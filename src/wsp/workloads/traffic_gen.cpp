#include "wsp/workloads/traffic_gen.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/workloads/graph_apps.hpp"

namespace wsp::workloads {

const char* to_string(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::Synthetic: return "synthetic";
    case WorkloadClass::AllReduceRing: return "allreduce-ring";
    case WorkloadClass::HaloExchange: return "halo-exchange";
    case WorkloadClass::LayerPipeline: return "layer-pipeline";
    case WorkloadClass::SpikingBurst: return "spiking-burst";
    case WorkloadClass::GraphWave: return "graph-wave";
  }
  return "?";
}

void save_spec(ckpt::Writer& w, const WorkloadSpec& s) {
  w.u8(static_cast<std::uint8_t>(s.cls));
  w.u64(s.seed);
  w.u8(static_cast<std::uint8_t>(s.synthetic.pattern));
  w.f64(s.synthetic.injection_rate);
  w.f64(s.synthetic.hotspot_fraction);
  w.i32(s.synthetic.hotspot.x);
  w.i32(s.synthetic.hotspot.y);
  w.i32(s.allreduce.chunk_packets);
  w.u64(s.allreduce.step_cycles);
  w.u64(s.allreduce.gap_cycles);
  w.i32(s.allreduce.rect_x0);
  w.i32(s.allreduce.rect_y0);
  w.i32(s.allreduce.rect_x1);
  w.i32(s.allreduce.rect_y1);
  w.u64(s.halo.halo_period);
  w.i32(s.pipeline.stages);
  w.u64(s.pipeline.compute_cycles);
  w.u64(s.pipeline.comm_cycles);
  w.f64(s.pipeline.stage_flops);
  w.f64(s.spiking.background_rate);
  w.f64(s.spiking.burst_rate);
  w.u64(s.spiking.burst_interval);
  w.i32(s.spiking.max_bursts);
  w.i32(s.spiking.hotspot.x);
  w.i32(s.spiking.hotspot.y);
  w.i32(s.spiking.burst_radius);
  w.u64(s.spiking.burst_cycles);
  w.f64(s.spiking.burst_intensity);
  w.i32(s.graph.scale);
  w.u64(s.graph.edges);
  w.u32(s.graph.max_weight);
  w.u64(s.graph.graph_seed);
  w.u32(s.graph.source);
  w.b(s.graph.weighted);
  w.u64(s.graph.compute_gap_cycles);
}

namespace {

// --- synthetic (legacy patterns behind the seam) ----------------------------

/// Wraps noc::TrafficConfig + a seeded Rng.  The draw order replicates the
/// inline injection loop CosimLoop used before the seam existed — iterate
/// the grid in linear order, one bernoulli per healthy tile, then
/// pick_destination — so a Synthetic-driven CosimLoop reproduces the old
/// traffic stream bit for bit.
class SyntheticGenerator final : public TrafficGenerator {
 public:
  SyntheticGenerator(const WorkloadSpec& spec, const FaultMap& faults)
      : faults_(faults), config_(spec.synthetic), rng_(spec.seed) {}

  const char* name() const override { return "synthetic"; }

  void emit(std::vector<Injection>& out) override {
    const TileGrid& grid = faults_.grid();
    grid.for_each([&](TileCoord src) {
      if (faults_.is_faulty(src)) return;
      if (!rng_.bernoulli(config_.injection_rate)) return;
      const TileCoord dst =
          noc::pick_destination(faults_, src, config_, rng_);
      if (dst == src) return;
      out.push_back({src, dst, noc::PacketType::ReadRequest, 0});
    });
    ++cycle_;
  }

  void apply_fault_state(const FaultMap& faults) override {
    faults_ = faults;
  }

  void save_state(ckpt::Writer& w) const override {
    w.tag(ckpt::fourcc("TGSY"));
    for (const std::uint64_t word : rng_.state()) w.u64(word);
    w.u64(cycle_);
  }

  void load_state(ckpt::Reader& r) override {
    r.expect_tag(ckpt::fourcc("TGSY"), "synthetic generator");
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t& word : s) word = r.u64();
    rng_.set_state(s);
    cycle_ = r.u64();
  }

 private:
  FaultMap faults_;
  noc::TrafficConfig config_;
  Rng rng_;
  std::uint64_t cycle_ = 0;
};

// --- all-reduce ring --------------------------------------------------------

class AllReduceRingGenerator final : public TrafficGenerator {
 public:
  AllReduceRingGenerator(const WorkloadSpec& spec, const FaultMap& faults)
      : opts_(spec.allreduce), faults_(faults) {
    require(opts_.chunk_packets >= 1,
            "all-reduce: chunk_packets must be >= 1");
    require(opts_.step_cycles >= 1, "all-reduce: step_cycles must be >= 1");
    require(static_cast<std::uint64_t>(opts_.chunk_packets) <=
                opts_.step_cycles,
            "all-reduce: chunk_packets must fit in step_cycles");
    rebuild_ring();
  }

  const char* name() const override { return "allreduce-ring"; }

  void emit(std::vector<Injection>& out) override {
    if (ring_.size() >= 2 && emitting_now()) {
      // Reduce-scatter then all-gather: at every active cycle each ring
      // member forwards one chunk packet to its successor.
      for (std::size_t i = 0; i < ring_.size(); ++i) {
        const TileCoord src = ring_[i];
        const TileCoord dst = ring_[(i + 1) % ring_.size()];
        out.push_back({src, dst, noc::PacketType::WriteRequest,
                       cycle_in_op_});
      }
    }
    advance();
  }

  std::optional<std::uint64_t> next_scheduled_injections() const override {
    if (ring_.size() < 2) return 0;
    return emitting_now() ? ring_.size() : 0;
  }

  void apply_fault_state(const FaultMap& faults) override {
    faults_ = faults;
    rebuild_ring();
  }

  void save_state(ckpt::Writer& w) const override {
    w.tag(ckpt::fourcc("TGAR"));
    w.u64(cycle_in_op_);
  }

  void load_state(ckpt::Reader& r) override {
    r.expect_tag(ckpt::fourcc("TGAR"), "all-reduce ring generator");
    cycle_in_op_ = r.u64();
    if (op_cycles() > 0) cycle_in_op_ %= op_cycles();
  }

  const std::vector<TileCoord>& ring() const { return ring_; }

 private:
  /// One all-reduce op: 2*(R-1) ring steps of step_cycles, then the gap.
  std::uint64_t op_cycles() const {
    if (ring_.size() < 2) return 0;
    const std::uint64_t steps = 2 * (ring_.size() - 1);
    return steps * opts_.step_cycles + opts_.gap_cycles;
  }

  bool emitting_now() const {
    const std::uint64_t steps = 2 * (ring_.size() - 1);
    if (cycle_in_op_ >= steps * opts_.step_cycles) return false;  // gap
    return cycle_in_op_ % opts_.step_cycles <
           static_cast<std::uint64_t>(opts_.chunk_packets);
  }

  void advance() {
    const std::uint64_t op = op_cycles();
    if (op == 0) return;
    if (++cycle_in_op_ == op) cycle_in_op_ = 0;
  }

  /// Healthy tiles inside the rect in boustrophedon (snake) order, so ring
  /// successors are physically adjacent wherever faults allow — the
  /// traffic stays on the band, which is what makes the droop-along-the-
  /// ring-path experiments directional.
  void rebuild_ring() {
    const TileGrid& grid = faults_.grid();
    int x0 = opts_.rect_x0, y0 = opts_.rect_y0;
    int x1 = opts_.rect_x1, y1 = opts_.rect_y1;
    if (x1 < x0 || y1 < y0) {
      x0 = 0;
      y0 = 0;
      x1 = grid.width() - 1;
      y1 = grid.height() - 1;
    }
    x0 = std::max(0, x0);
    y0 = std::max(0, y0);
    x1 = std::min(grid.width() - 1, x1);
    y1 = std::min(grid.height() - 1, y1);
    ring_.clear();
    for (int y = y0; y <= y1; ++y) {
      const bool reversed = ((y - y0) % 2) != 0;
      for (int i = 0; x0 + i <= x1; ++i) {
        const int x = reversed ? x1 - i : x0 + i;
        const TileCoord c{x, y};
        if (faults_.is_healthy(c)) ring_.push_back(c);
      }
    }
    if (op_cycles() > 0) cycle_in_op_ %= op_cycles();
  }

  AllReduceOptions opts_;
  FaultMap faults_;
  std::vector<TileCoord> ring_;
  std::uint64_t cycle_in_op_ = 0;
};

// --- halo exchange ----------------------------------------------------------

class HaloExchangeGenerator final : public TrafficGenerator {
 public:
  HaloExchangeGenerator(const WorkloadSpec& spec, const FaultMap& faults)
      : opts_(spec.halo), faults_(faults) {
    require(opts_.halo_period >= 4,
            "halo exchange: halo_period must be >= 4 (one wave per "
            "direction)");
  }

  const char* name() const override { return "halo-exchange"; }

  void emit(std::vector<Injection>& out) override {
    const std::uint64_t phase = cycle_ % opts_.halo_period;
    if (phase < 4) {
      const Direction d = kWaveOrder[phase];
      const TileGrid& grid = faults_.grid();
      grid.for_each([&](TileCoord src) {
        if (faults_.is_faulty(src)) return;
        const auto n = grid.neighbor(src, d);
        if (!n || faults_.is_faulty(*n)) return;
        out.push_back({src, *n, noc::PacketType::WriteRequest, cycle_});
      });
    }
    ++cycle_;
  }

  std::optional<std::uint64_t> next_scheduled_injections() const override {
    const std::uint64_t phase = cycle_ % opts_.halo_period;
    if (phase >= 4) return 0;
    const Direction d = kWaveOrder[phase];
    const TileGrid& grid = faults_.grid();
    std::uint64_t count = 0;
    grid.for_each([&](TileCoord src) {
      if (faults_.is_faulty(src)) return;
      const auto n = grid.neighbor(src, d);
      if (n && faults_.is_healthy(*n)) ++count;
    });
    return count;
  }

  void apply_fault_state(const FaultMap& faults) override {
    faults_ = faults;
  }

  void save_state(ckpt::Writer& w) const override {
    w.tag(ckpt::fourcc("TGHX"));
    w.u64(cycle_);
  }

  void load_state(ckpt::Reader& r) override {
    r.expect_tag(ckpt::fourcc("TGHX"), "halo exchange generator");
    cycle_ = r.u64();
  }

 private:
  static constexpr std::array<Direction, 4> kWaveOrder = {
      Direction::East, Direction::West, Direction::North, Direction::South};

  HaloOptions opts_;
  FaultMap faults_;
  std::uint64_t cycle_ = 0;
};

// --- layer pipeline ---------------------------------------------------------

class LayerPipelineGenerator final : public TrafficGenerator {
 public:
  LayerPipelineGenerator(const WorkloadSpec& spec, const SystemConfig& config,
                         const FaultMap& faults)
      : opts_(spec.pipeline), faults_(faults) {
    const TileGrid& grid = faults_.grid();
    require(opts_.stages >= 2, "layer pipeline: need at least 2 stages");
    require(opts_.stages <= grid.width(),
            "layer pipeline: more stages than columns");
    require(opts_.comm_cycles >= 1,
            "layer pipeline: comm_cycles must be >= 1");
    stages_ = opts_.stages;
    compute_cycles_ = opts_.compute_cycles;
    if (compute_cycles_ == 0) {
      // Core timing model: tiles_per_stage * cores_per_tile cores retire
      // one op per cycle, so a stage's layer takes ceil(flops / that).
      const double tiles_per_stage =
          static_cast<double>(grid.width() / stages_) *
          static_cast<double>(grid.height());
      const double ops_per_cycle =
          std::max(1.0, tiles_per_stage *
                            static_cast<double>(config.cores_per_tile));
      require(opts_.stage_flops > 0.0,
              "layer pipeline: stage_flops must be positive");
      compute_cycles_ = static_cast<std::uint64_t>(
          std::ceil(opts_.stage_flops / ops_per_cycle));
      if (compute_cycles_ == 0) compute_cycles_ = 1;
    }
    rebuild_routes();
  }

  const char* name() const override { return "layer-pipeline"; }

  void emit(std::vector<Injection>& out) override {
    if (communicating_now()) {
      for (const auto& [src, dst] : routes_)
        out.push_back({src, dst, noc::PacketType::WriteRequest, cycle_});
    }
    ++cycle_;
  }

  std::optional<std::uint64_t> next_scheduled_injections() const override {
    return communicating_now() ? routes_.size() : 0;
  }

  void apply_fault_state(const FaultMap& faults) override {
    faults_ = faults;
    rebuild_routes();
  }

  void save_state(ckpt::Writer& w) const override {
    w.tag(ckpt::fourcc("TGLP"));
    w.u64(cycle_);
  }

  void load_state(ckpt::Reader& r) override {
    r.expect_tag(ckpt::fourcc("TGLP"), "layer pipeline generator");
    cycle_ = r.u64();
  }

  std::uint64_t compute_cycles() const { return compute_cycles_; }

 private:
  bool communicating_now() const {
    return cycle_ % (compute_cycles_ + opts_.comm_cycles) >= compute_cycles_;
  }

  int stage_of(int x) const {
    const int band = faults_.grid().width() / stages_;
    return std::min(stages_ - 1, x / band);
  }

  /// Forward routes, one per healthy non-final-stage tile: to the first
  /// healthy tile of the next stage band scanning the same row west->east
  /// (activations flow to the layer that consumes them).
  void rebuild_routes() {
    routes_.clear();
    const TileGrid& grid = faults_.grid();
    const int band = grid.width() / stages_;
    grid.for_each([&](TileCoord src) {
      if (faults_.is_faulty(src)) return;
      const int s = stage_of(src.x);
      if (s >= stages_ - 1) return;
      const int nx0 = (s + 1) * band;
      const int nx1 =
          (s + 2 == stages_) ? grid.width() - 1 : (s + 2) * band - 1;
      for (int x = nx0; x <= nx1; ++x) {
        const TileCoord dst{x, src.y};
        if (faults_.is_healthy(dst)) {
          routes_.emplace_back(src, dst);
          return;
        }
      }
    });
  }

  LayerPipelineOptions opts_;
  FaultMap faults_;
  int stages_ = 2;
  std::uint64_t compute_cycles_ = 1;
  std::vector<std::pair<TileCoord, TileCoord>> routes_;
  std::uint64_t cycle_ = 0;
};

// --- spiking bursts ---------------------------------------------------------

class SpikingBurstGenerator final : public TrafficGenerator {
 public:
  SpikingBurstGenerator(const WorkloadSpec& spec, const FaultMap& faults)
      : opts_(spec.spiking), faults_(faults), rng_(spec.seed) {
    require(opts_.background_rate >= 0.0 && opts_.background_rate <= 1.0,
            "spiking: background_rate must be a probability");
    require(opts_.burst_rate >= 0.0 && opts_.burst_rate <= 1.0,
            "spiking: burst_rate must be a probability");
    require(opts_.burst_cycles >= 1, "spiking: burst_cycles must be >= 1");
    require(opts_.burst_radius >= 0,
            "spiking: burst_radius must be non-negative");
    require(opts_.burst_intensity >= 0.0 && opts_.burst_intensity <= 1.0,
            "spiking: burst_intensity must be a probability");
  }

  const char* name() const override { return "spiking-burst"; }

  void emit(std::vector<Injection>& out) override {
    const TileGrid& grid = faults_.grid();
    // 1. Deterministic avalanche starts at the configured hotspot.
    if (opts_.burst_interval > 0 && cycle_ % opts_.burst_interval == 0 &&
        (opts_.max_bursts < 0 ||
         bursts_started_ < static_cast<std::uint64_t>(opts_.max_bursts))) {
      start_burst(opts_.hotspot);
    }
    // 2. Stochastic avalanche starts (Poisson-thinned).
    if (opts_.burst_rate > 0.0 && rng_.bernoulli(opts_.burst_rate))
      start_burst({-1, -1});
    // 3. Background firing: one thinning draw per healthy tile, in linear
    //    order so the stream is independent of everything downstream.
    if (opts_.background_rate > 0.0) {
      grid.for_each([&](TileCoord src) {
        if (faults_.is_faulty(src)) return;
        if (!rng_.bernoulli(opts_.background_rate)) return;
        spike(src, out);
      });
    }
    // 4. Active avalanches: intensity decays linearly over burst_cycles.
    for (auto it = bursts_.begin(); it != bursts_.end();) {
      const std::uint64_t age = cycle_ - it->start_cycle;
      if (age >= opts_.burst_cycles) {
        it = bursts_.erase(it);
        continue;
      }
      const double p = opts_.burst_intensity *
                       (1.0 - static_cast<double>(age) /
                                  static_cast<double>(opts_.burst_cycles));
      const int r = opts_.burst_radius;
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          const TileCoord c{it->center.x + dx, it->center.y + dy};
          if (!grid.contains(c) || faults_.is_faulty(c)) continue;
          if (rng_.bernoulli(p)) spike(c, out);
        }
      }
      ++it;
    }
    ++cycle_;
  }

  void apply_fault_state(const FaultMap& faults) override {
    faults_ = faults;
  }

  void save_state(ckpt::Writer& w) const override {
    w.tag(ckpt::fourcc("TGSB"));
    for (const std::uint64_t word : rng_.state()) w.u64(word);
    w.u64(cycle_);
    w.u64(bursts_started_);
    w.u64(total_spikes_);
    w.u64(bursts_.size());
    for (const Burst& b : bursts_) {
      w.i32(b.center.x);
      w.i32(b.center.y);
      w.u64(b.start_cycle);
    }
  }

  void load_state(ckpt::Reader& r) override {
    r.expect_tag(ckpt::fourcc("TGSB"), "spiking burst generator");
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t& word : s) word = r.u64();
    rng_.set_state(s);
    cycle_ = r.u64();
    bursts_started_ = r.u64();
    total_spikes_ = r.u64();
    const std::size_t n = r.length(16);
    bursts_.resize(n);
    for (Burst& b : bursts_) {
      b.center.x = r.i32();
      b.center.y = r.i32();
      b.start_cycle = r.u64();
    }
  }

  /// Spikes emitted so far — the seed-determinism probe: two generators
  /// with equal spec/faults report equal totals after equal cycle counts.
  std::uint64_t total_spikes() const { return total_spikes_; }
  std::size_t active_bursts() const { return bursts_.size(); }

 private:
  struct Burst {
    TileCoord center{0, 0};
    std::uint64_t start_cycle = 0;
  };

  void start_burst(TileCoord center) {
    const TileGrid& grid = faults_.grid();
    if (!grid.contains(center) || faults_.is_faulty(center)) {
      // Random healthy centre (configured centre dead or unset).
      const std::vector<TileCoord> healthy = faults_.healthy_tiles();
      if (healthy.empty()) return;
      center = healthy[rng_.below(healthy.size())];
    }
    bursts_.push_back({center, cycle_});
    ++bursts_started_;
  }

  /// One spike: a short-range message to a random healthy tile within
  /// distance 2 (dendritic fan-out stays local).  Unroutable draws are
  /// dropped after bounded attempts — the RNG consumption stays a pure
  /// function of the draw sequence either way.
  void spike(TileCoord src, std::vector<Injection>& out) {
    const TileGrid& grid = faults_.grid();
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int dx = static_cast<int>(rng_.below(5)) - 2;
      const int dy = static_cast<int>(rng_.below(5)) - 2;
      const TileCoord dst{src.x + dx, src.y + dy};
      if (!grid.contains(dst) || faults_.is_faulty(dst) || dst == src)
        continue;
      out.push_back({src, dst, noc::PacketType::WriteRequest, cycle_});
      ++total_spikes_;
      return;
    }
  }

  SpikingOptions opts_;
  FaultMap faults_;
  Rng rng_;
  std::uint64_t cycle_ = 0;
  std::uint64_t bursts_started_ = 0;
  std::uint64_t total_spikes_ = 0;
  std::vector<Burst> bursts_;
};

// --- graph wave -------------------------------------------------------------

class GraphWaveGenerator final : public TrafficGenerator {
 public:
  GraphWaveGenerator(const WorkloadSpec& spec, const FaultMap& faults)
      : opts_(spec.graph), faults_(faults) {
    require(opts_.scale >= 2 && opts_.scale <= 24,
            "graph wave: scale out of range");
    Rng graph_rng(opts_.graph_seed);
    graph_ = std::make_unique<Graph>(
        make_rmat_graph(opts_.scale, opts_.edges, opts_.max_weight,
                        graph_rng));
    require(opts_.source < graph_->vertex_count(),
            "graph wave: source vertex out of range");
    levels_ = reference_bfs(*graph_, opts_.source);
    rebuild_waves();
  }

  const char* name() const override { return "graph-wave"; }

  void emit(std::vector<Injection>& out) override {
    if (!waves_.empty()) {
      if (gap_remaining_ > 0) {
        --gap_remaining_;
        if (gap_remaining_ == 0) next_level();
      } else {
        const Wave& wave = waves_[level_index_];
        for (const auto& q : wave.queues)
          if (round_ < q.size()) out.push_back(q[round_]);
        if (++round_ >= wave.rounds()) {
          round_ = 0;
          if (opts_.compute_gap_cycles > 0)
            gap_remaining_ = opts_.compute_gap_cycles;
          else
            next_level();
        }
      }
    }
    ++cycle_;
  }

  std::optional<std::uint64_t> next_scheduled_injections() const override {
    if (waves_.empty() || gap_remaining_ > 0) return 0;
    const Wave& wave = waves_[level_index_];
    std::uint64_t count = 0;
    for (const auto& q : wave.queues)
      if (round_ < q.size()) ++count;
    return count;
  }

  void apply_fault_state(const FaultMap& faults) override {
    faults_ = faults;
    rebuild_waves();
  }

  void save_state(ckpt::Writer& w) const override {
    w.tag(ckpt::fourcc("TGGW"));
    w.u64(cycle_);
    w.u64(level_index_);
    w.u64(round_);
    w.u64(gap_remaining_);
  }

  void load_state(ckpt::Reader& r) override {
    r.expect_tag(ckpt::fourcc("TGGW"), "graph wave generator");
    cycle_ = r.u64();
    level_index_ = r.u64();
    round_ = r.u64();
    gap_remaining_ = r.u64();
    if (!waves_.empty()) {
      level_index_ %= waves_.size();
      const std::uint64_t rounds = waves_[level_index_].rounds();
      if (rounds > 0 && round_ >= rounds) round_ = 0;
    }
  }

  std::size_t level_count() const { return waves_.size(); }

 private:
  /// One frontier level's cross-tile messages, grouped per source tile.
  /// On round r each queue emits its r-th message, so a level lasts
  /// max-queue-length communicate cycles — the per-tile NoC port limit the
  /// message-passing runtime would impose.
  struct Wave {
    std::vector<std::vector<Injection>> queues;
    std::uint64_t rounds() const {
      std::size_t m = 0;
      for (const auto& q : queues) m = std::max(m, q.size());
      return m;
    }
  };

  void next_level() {
    level_index_ = (level_index_ + 1) % waves_.size();
    round_ = 0;
  }

  /// Rebuilds the per-level message waves from the current partition.  The
  /// graph and its BFS levels never change (they are workload structure,
  /// not wafer state); only the vertex->tile ownership moves with faults.
  void rebuild_waves() {
    waves_.clear();
    VertexPartition part(*graph_, faults_);
    std::uint32_t deepest = 0;
    for (const std::uint32_t l : levels_)
      if (l != kUnreachedDistance) deepest = std::max(deepest, l);
    for (std::uint32_t level = 0; level <= deepest; ++level) {
      Wave wave;
      // queue index per source tile, assigned in first-touch order over
      // the deterministic (vertex, edge) iteration.
      std::vector<int> slot(faults_.grid().tile_count(), -1);
      for (std::uint32_t v = 0; v < graph_->vertex_count(); ++v) {
        if (levels_[v] != level) continue;
        const TileCoord src = part.owner(v);
        const Graph::EdgeRange edges = graph_->out_edges(v);
        for (std::size_t e = 0; e < edges.count; ++e) {
          const std::uint32_t u = edges.targets[e];
          const TileCoord dst = part.owner(u);
          if (dst == src) continue;  // same-tile relaxation: no NoC hop
          const std::size_t si = faults_.grid().index_of(src);
          if (slot[si] < 0) {
            slot[si] = static_cast<int>(wave.queues.size());
            wave.queues.emplace_back();
          }
          const std::uint64_t payload =
              opts_.weighted ? edges.weights[e] : 1;
          wave.queues[static_cast<std::size_t>(slot[si])].push_back(
              {src, dst, noc::PacketType::WriteRequest, payload});
        }
      }
      if (!wave.queues.empty()) waves_.push_back(std::move(wave));
    }
    if (waves_.empty()) {
      level_index_ = 0;
      round_ = 0;
      gap_remaining_ = 0;
      return;
    }
    level_index_ %= waves_.size();
    const std::uint64_t rounds = waves_[level_index_].rounds();
    if (round_ >= rounds) round_ = rounds ? rounds - 1 : 0;
  }

  GraphWaveOptions opts_;
  FaultMap faults_;
  std::unique_ptr<Graph> graph_;
  std::vector<std::uint32_t> levels_;
  std::vector<Wave> waves_;
  std::uint64_t cycle_ = 0;
  std::uint64_t level_index_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t gap_remaining_ = 0;
};

}  // namespace

std::unique_ptr<TrafficGenerator> make_generator(const WorkloadSpec& spec,
                                                 const SystemConfig& config,
                                                 const FaultMap& faults) {
  require(faults.grid().width() == config.grid().width() &&
              faults.grid().height() == config.grid().height(),
          "workload generator: fault map grid must match the config grid");
  switch (spec.cls) {
    case WorkloadClass::Synthetic:
      return std::make_unique<SyntheticGenerator>(spec, faults);
    case WorkloadClass::AllReduceRing:
      return std::make_unique<AllReduceRingGenerator>(spec, faults);
    case WorkloadClass::HaloExchange:
      return std::make_unique<HaloExchangeGenerator>(spec, faults);
    case WorkloadClass::LayerPipeline:
      return std::make_unique<LayerPipelineGenerator>(spec, config, faults);
    case WorkloadClass::SpikingBurst:
      return std::make_unique<SpikingBurstGenerator>(spec, faults);
    case WorkloadClass::GraphWave:
      return std::make_unique<GraphWaveGenerator>(spec, faults);
  }
  throw wsp::Error("workload generator: unknown workload class");
}

// --- NocSystem driver -------------------------------------------------------

WorkloadRunResult run_workload_traffic(noc::NocSystem& noc,
                                       TrafficGenerator& gen,
                                       std::uint64_t cycles,
                                       obs::MetricsRegistry* registry,
                                       bool drain) {
  const noc::NocStats before = noc.stats();
  const std::uint64_t start = noc.now();

  WorkloadRunResult result;
  ckpt::Writer trace;
  std::vector<std::uint64_t> latencies;
  std::vector<Injection> pending;
  std::vector<noc::CompletedTransaction> done;
  const auto record_done = [&] {
    for (const noc::CompletedTransaction& t : done) {
      trace.i32(t.src.x);
      trace.i32(t.src.y);
      trace.i32(t.dst.x);
      trace.i32(t.dst.y);
      trace.u64(t.issue_cycle);
      trace.u64(t.complete_cycle);
      trace.b(t.relayed);
      if (t.issue_cycle >= start) latencies.push_back(t.latency());
    }
    done.clear();
  };

  for (std::uint64_t c = 0; c < cycles; ++c) {
    pending.clear();
    gen.emit(pending);
    result.injections += pending.size();
    for (const Injection& inj : pending)
      (void)noc.issue(inj.src, inj.dst, inj.type, inj.payload);
    noc.step(done);
    record_done();
  }
  if (drain) {
    noc.drain(done);
    record_done();
  }

  const noc::NocStats after = noc.stats();
  result.report.cycles = cycles;
  result.report.issued = after.issued - before.issued;
  result.report.completed = after.completed - before.completed;
  result.report.unreachable = after.unreachable - before.unreachable;
  result.report.offered_load =
      cycles ? static_cast<double>(result.report.issued) / cycles : 0.0;
  result.report.throughput =
      cycles ? static_cast<double>(result.report.completed) / cycles : 0.0;

  if (registry) {
    const std::string prefix = std::string("workloads.") + gen.name();
    registry->counter(prefix + ".injected").add(result.injections);
    registry->counter(prefix + ".completed").add(result.report.completed);
    obs::Histogram& h = registry->histogram(prefix + ".latency");
    for (const std::uint64_t l : latencies) h.record(l);
  }

  result.delivery_digest = ckpt::crc32(trace.bytes().data(), trace.size());
  finalize_latencies(result.report, std::move(latencies));
  return result;
}

}  // namespace wsp::workloads
