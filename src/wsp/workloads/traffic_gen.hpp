// Workload traffic generators: deterministic, seedable per-cycle injection
// streams for the tenant classes a waferscale processor actually hosts.
//
// Every NoC/cosim result used to run uniform-random traffic; the paper's
// wafer is built for real tenants — DL kernels pipelined across the 2048
// chiplets and event-driven neuromorphic workloads.  This module models
// them as injection streams behind one seam:
//
//   * collectives    — all-reduce rings (reduce-scatter + all-gather over a
//                      snake ring of healthy tiles) and halo exchange over
//                      tile neighbourhoods (stencil ghost-cell swaps);
//   * layer pipeline — alternating compute/communicate phases, the compute
//                      window derived from the core timing model
//                      (cores_per_tile cores, 1 op/cycle each);
//   * spiking bursts — Poisson-thinned background firing plus hotspot
//                      avalanches that flare and decay (neuromorphic);
//   * graph waves    — BFS/SSSP frontier expansions replayed as per-level
//                      message waves over the vertex partition;
//   * synthetic      — the legacy uniform/hotspot patterns, wrapped so the
//                      old behaviour is just another generator.
//
// Determinism contract: a generator is a pure function of (spec, config,
// fault map, cycles emitted so far).  emit() advances exactly one cycle, so
// run(a); run(b) is bit-identical to run(a+b); all randomness flows from a
// private wsp::Rng seeded by the spec; and save_state/load_state round-trip
// the complete cursor + RNG state in a per-class tagged checkpoint frame,
// making mid-run kill-and-resume bit-identical.  Generators never emit from
// or to a faulty tile — apply_fault_state() re-derives the phase geometry
// (ring membership, halo neighbours, pipeline stages, vertex owners) when
// the fault map changes mid-run.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "wsp/common/config.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/noc/traffic.hpp"

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::obs {
class MetricsRegistry;
}  // namespace wsp::obs

namespace wsp::workloads {

/// One transaction a generator wants issued this cycle.
struct Injection {
  TileCoord src{0, 0};
  TileCoord dst{0, 0};
  noc::PacketType type = noc::PacketType::ReadRequest;
  std::uint64_t payload = 0;
  friend bool operator==(const Injection&, const Injection&) = default;
};

/// The seam NocSystem and CosimLoop consume in place of inline
/// uniform-random injection.  See the file comment for the determinism
/// contract every implementation honours.
class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  virtual const char* name() const = 0;

  /// Appends this cycle's injections to `out` (which is not cleared) and
  /// advances the generator's internal cycle cursor by one.
  virtual void emit(std::vector<Injection>& out) = 0;

  /// Analytic injection count of the *next* emit() call, for generators
  /// whose phase schedule is closed-form (collectives, pipeline, graph
  /// waves).  Stochastic generators return nullopt.
  virtual std::optional<std::uint64_t> next_scheduled_injections() const {
    return std::nullopt;
  }

  /// Re-derives the phase geometry after the fault map changed.  The cycle
  /// cursor is preserved (clamped into the new schedule where its period
  /// shrank); subsequent emissions avoid the newly faulty tiles.
  virtual void apply_fault_state(const FaultMap& faults) = 0;

  /// Checkpoint hooks: the complete cursor + RNG state, framed under a
  /// per-class tag so loading a snapshot of a different class fails loudly
  /// with ckpt::Error{SchemaMismatch}.  load_state targets a generator
  /// constructed with an equal spec/config/fault map.
  virtual void save_state(ckpt::Writer& w) const = 0;
  virtual void load_state(ckpt::Reader& r) = 0;
};

// --- workload specification -------------------------------------------------

enum class WorkloadClass : std::uint8_t {
  Synthetic = 0,     ///< legacy noc::TrafficConfig patterns
  AllReduceRing,     ///< reduce-scatter + all-gather over a tile ring
  HaloExchange,      ///< 4-direction ghost-cell swap every period
  LayerPipeline,     ///< compute/communicate phases across column stages
  SpikingBurst,      ///< Poisson background + hotspot avalanches
  GraphWave,         ///< BFS/SSSP frontier waves over the vertex partition
};

const char* to_string(WorkloadClass c);

/// All-reduce ring: the healthy tiles inside `rect` (whole grid when the
/// rect is empty) are ordered into a boustrophedon ring; one all-reduce op
/// is 2*(R-1) ring steps (reduce-scatter then all-gather), each step
/// lasting step_cycles during which every member sends chunk_packets to its
/// ring successor (one per cycle), followed by gap_cycles of silence before
/// the next op.  Requires chunk_packets <= step_cycles.
struct AllReduceOptions {
  int chunk_packets = 4;
  std::uint64_t step_cycles = 8;
  std::uint64_t gap_cycles = 32;
  /// Confinement rectangle (inclusive).  x1 < x0 selects the whole grid.
  /// A confined ring concentrates the collective on a band of the wafer —
  /// the shape the droop-along-the-ring-path experiments use.
  int rect_x0 = 0, rect_y0 = 0, rect_x1 = -1, rect_y1 = -1;
};

/// Halo exchange: every halo_period cycles, four direction waves on
/// consecutive cycles (E, W, N, S); in each wave every healthy tile with a
/// healthy in-grid neighbour in that direction sends it one packet.
/// Requires halo_period >= 4.
struct HaloOptions {
  std::uint64_t halo_period = 8;
};

/// Layer pipeline: the wafer's columns are split into `stages` equal bands
/// (stage = layer).  The stream alternates a global compute window (no
/// traffic) with a communicate window of comm_cycles during which every
/// healthy tile of stage s sends one packet per cycle to the first healthy
/// same-row tile of stage s+1 (activations flowing forward).  When
/// compute_cycles is 0 it is derived from the core timing model:
/// ceil(stage_flops / (cores_per_tile * tiles_per_stage)) cycles at one op
/// per core per cycle.
struct LayerPipelineOptions {
  int stages = 4;
  std::uint64_t compute_cycles = 0;  ///< 0 = derive from the timing model
  std::uint64_t comm_cycles = 8;
  double stage_flops = 1.0e6;  ///< work per stage per layer (for deriving)
};

/// Spiking bursts: per cycle, every healthy tile fires a background spike
/// with probability background_rate (Poisson thinning); avalanches start
/// either stochastically (probability burst_rate per cycle, random healthy
/// centre) or deterministically (every burst_interval cycles at `hotspot`,
/// capped at max_bursts).  An active avalanche makes every healthy tile
/// within Chebyshev distance burst_radius of its centre fire with
/// probability burst_intensity decaying linearly to zero over burst_cycles.
/// Spikes target a random healthy tile within distance 2 of the source.
struct SpikingOptions {
  double background_rate = 0.002;
  double burst_rate = 0.0;
  std::uint64_t burst_interval = 0;  ///< 0 = no deterministic bursts
  int max_bursts = -1;               ///< cap on deterministic bursts; -1 = none
  TileCoord hotspot{-1, -1};         ///< (-1,-1) = random healthy centre
  int burst_radius = 3;
  std::uint64_t burst_cycles = 32;
  double burst_intensity = 0.6;
};

/// Graph wave: an R-MAT graph is generated from graph_seed, reference BFS
/// levels are computed from `source`, and the vertices are block-partitioned
/// over the healthy tiles.  Each frontier level becomes a communicate phase:
/// every cross-tile edge (owner(v) -> owner(u), v in the level) is one
/// message, emitted at most one per source tile per cycle, followed by
/// compute_gap_cycles of silence before the next level.  After the deepest
/// level the wave restarts, so the generator streams indefinitely.
struct GraphWaveOptions {
  int scale = 8;
  std::uint64_t edges = 4096;
  std::uint32_t max_weight = 8;
  std::uint64_t graph_seed = 42;
  std::uint32_t source = 0;
  bool weighted = false;  ///< SSSP-style weights in the payload
  std::uint64_t compute_gap_cycles = 4;
};

/// Value-type description of one workload: the class selector plus every
/// per-class knob.  save_spec() serialises all of it, so a campaign
/// fingerprint or a checkpoint header pins the workload identity.
struct WorkloadSpec {
  WorkloadClass cls = WorkloadClass::Synthetic;
  std::uint64_t seed = 1;
  noc::TrafficConfig synthetic{};
  AllReduceOptions allreduce{};
  HaloOptions halo{};
  LayerPipelineOptions pipeline{};
  SpikingOptions spiking{};
  GraphWaveOptions graph{};
};

/// Serialises every behavioural field of `spec` (class, seed, all per-class
/// knobs) — the bytes campaign fingerprints fold in.
void save_spec(ckpt::Writer& w, const WorkloadSpec& spec);

/// Constructs the generator `spec` describes, bound to `config`/`faults`.
/// Throws wsp::Error on invalid per-class options.
std::unique_ptr<TrafficGenerator> make_generator(const WorkloadSpec& spec,
                                                 const SystemConfig& config,
                                                 const FaultMap& faults);

// --- the NocSystem driver ---------------------------------------------------

/// Result of driving a generator against a NocSystem.
struct WorkloadRunResult {
  noc::TrafficReport report;  ///< latency percentiles over the run window
  /// CRC-32 over the delivery trace: every transaction completed during
  /// the run (and its drain), serialised in completion order as
  /// (src, dst, issue_cycle, complete_cycle, relayed).  The golden-trace
  /// regression constant — bit-identical across thread and shard counts.
  std::uint32_t delivery_digest = 0;
  std::uint64_t injections = 0;  ///< injections the generator emitted
};

/// Runs `cycles` cycles of `gen` against `noc` (then drains when `drain`),
/// assembling latency percentiles over transactions issued in the window
/// and the delivery-trace digest.  When `registry` is non-null the run
/// also records per-class observability under "workloads.<name>.":
/// the round-trip latency histogram (exact p50/p95/p99 via RunReport) and
/// injected/completed counters.
WorkloadRunResult run_workload_traffic(noc::NocSystem& noc,
                                       TrafficGenerator& gen,
                                       std::uint64_t cycles,
                                       obs::MetricsRegistry* registry = nullptr,
                                       bool drain = true);

}  // namespace wsp::workloads
