// Distributed PageRank on the waferscale system.
//
// The paper's introduction motivates the machine with "graph processing,
// data analytics, and machine learning"; BFS/SSSP cover the traversal
// class, PageRank covers the iterative-analytics class (and exercises the
// bulk-synchronous pattern: per-iteration barriers over the asynchronous
// NoC).  Each tile owns a vertex slice; every iteration it scatters
// rank/degree contributions to the owners of out-neighbours and applies
// the damped update when the next iteration tick arrives.
//
// All arithmetic is 64-bit fixed point with integer division, performed
// in the same order-independent way (pure additions between ticks) by
// both the distributed run and the sequential reference — so the two
// match *exactly*, not approximately.
#pragma once

#include <cstdint>
#include <vector>

#include "wsp/arch/wafer_system.hpp"
#include "wsp/workloads/graph.hpp"

namespace wsp::workloads {

struct PageRankOptions {
  int iterations = 10;
  std::uint32_t damping_permille = 850;  ///< d = 0.85
  /// Initial rank per vertex, fixed-point.  Total rank mass
  /// (initial_rank x vertices) must stay below 2^40 so contribution
  /// payloads pack into the 100-bit packet's payload field.
  std::uint64_t initial_rank = 1ull << 24;
};

struct PageRankResult {
  std::vector<std::uint64_t> rank;  ///< fixed-point, per vertex
  arch::WaferSystemStats stats;
  bool quiesced = false;
  int iterations_run = 0;
};

/// Runs PageRank across the healthy tiles of a wafer.
PageRankResult run_pagerank(const SystemConfig& config,
                            const FaultMap& faults, const Graph& graph,
                            const PageRankOptions& options = {},
                            const noc::NocOptions& noc_options = {});

/// Sequential reference performing the identical fixed-point updates.
std::vector<std::uint64_t> reference_pagerank(
    const Graph& graph, const PageRankOptions& options = {});

}  // namespace wsp::workloads
