// Timed fault schedules: the injection layer's script.
//
// A FaultSchedule is an ordered list of fault events, each pinned to a
// simulation cycle: tile deaths, directed-link failures, LDO brownouts,
// clock-generator losses, and transient packet corruptions.  Schedules are
// either authored explicitly (regression scenarios) or sampled from a
// seeded Rng (Monte Carlo campaigns) — either way they are plain data and
// replay bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "wsp/common/fault_observer.hpp"
#include "wsp/common/geometry.hpp"
#include "wsp/common/rng.hpp"

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::resilience {

/// One scheduled fault.  `link` is meaningful for link-targeted kinds;
/// `magnitude` is the new bit-error rate for LinkBerDegradation.
struct FaultEvent {
  std::uint64_t cycle = 0;
  RuntimeFaultKind kind = RuntimeFaultKind::TileDeath;
  TileCoord tile;
  Direction link = Direction::North;
  double magnitude = 0.0;
};

/// Mix of faults a random schedule draws (counts per kind).
struct ScheduleMix {
  std::size_t tile_deaths = 3;
  std::size_t link_failures = 2;
  std::size_t ldo_brownouts = 1;
  std::size_t clock_gen_losses = 0;
  std::size_t packet_corruptions = 2;
  std::size_t link_ber_degradations = 0;

  std::size_t total() const {
    return tile_deaths + link_failures + ldo_brownouts + clock_gen_losses +
           packet_corruptions + link_ber_degradations;
  }
};

/// Cycle-ordered fault script.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Inserts an event keeping the list sorted by cycle; events on the same
  /// cycle keep their insertion order (stable), so authored schedules
  /// apply in the order they were written.
  void add(const FaultEvent& event);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Cycle of the last event, 0 when empty.
  std::uint64_t horizon() const {
    return events_.empty() ? 0 : events_.back().cycle;
  }

  /// Samples a schedule of `mix.total()` events with cycles uniform in
  /// [1, horizon] and targets uniform over the grid (tile deaths avoid
  /// repeats; clock-gen losses target edge tiles).  Deterministic in rng.
  static FaultSchedule random(const TileGrid& grid, const ScheduleMix& mix,
                              std::uint64_t horizon, Rng& rng);

  /// Checkpoint hooks (wsp::ckpt): the event list round-trips verbatim
  /// (schedules are plain data).  Load rejects out-of-range enums and an
  /// unsorted event list with ckpt::Error{SchemaMismatch}.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  std::vector<FaultEvent> events_;
};

/// Single-event encoding shared by FaultSchedule and the injector's
/// accumulated BER-degradation list (26 bytes: cycle, kind, tile, link,
/// magnitude).  load_fault_event validates both enums.
void save_fault_event(ckpt::Writer& w, const FaultEvent& e);
FaultEvent load_fault_event(ckpt::Reader& r);

}  // namespace wsp::resilience
