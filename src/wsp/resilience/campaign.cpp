#include "wsp/resilience/campaign.hpp"

#include <algorithm>

#include "wsp/clock/forwarding.hpp"
#include "wsp/clock/recovery.hpp"
#include "wsp/common/error.hpp"
#include "wsp/exec/parallel_for.hpp"
#include "wsp/obs/trace.hpp"
#include "wsp/resilience/fault_injector.hpp"

namespace wsp::resilience {

namespace {

/// A transaction set watched until it fully resolves (completes or is
/// declared lost) — measures per-event recovery latency.
struct RecoveryTracker {
  std::size_t event_index;
  std::vector<std::uint64_t> ids;
};

void prune_resolved(std::vector<std::uint64_t>& ids,
                    const noc::NocSystem& noc) {
  ids.erase(std::remove_if(
                ids.begin(), ids.end(),
                [&](std::uint64_t id) { return !noc.is_inflight(id); }),
            ids.end());
}

TileCoord first_healthy_edge_tile(const FaultMap& faults) {
  const TileGrid& grid = faults.grid();
  TileCoord found{-1, -1};
  grid.for_each([&](TileCoord c) {
    if (found.x < 0 && grid.is_edge(c) && faults.is_healthy(c)) found = c;
  });
  require(found.x >= 0, "no healthy edge tile to generate the clock");
  return found;
}

}  // namespace

DegradationCampaign::DegradationCampaign(const CampaignOptions& options)
    : options_(options) {
  options_.config.validate();
  require(options_.run_cycles >= 1, "campaign needs at least one cycle");
  require(options_.injection_rate >= 0.0 && options_.injection_rate <= 1.0,
          "injection rate must be a probability");
  require(options_.trajectory_sample_period >= 1,
          "trajectory sample period must be >= 1");
}

DegradationReport DegradationCampaign::run() const {
  WSP_TRACE_SPAN("campaign.trial");
  const SystemConfig& config = options_.config;
  const TileGrid grid = config.grid();
  Rng rng(options_.seed);

  // --- assembly-time state: faults, clock plan, initial usable map -------
  FaultMap assembly =
      options_.initial_fault_probability > 0.0
          ? FaultMap::random_with_probability(
                grid, options_.initial_fault_probability, rng)
          : FaultMap(grid);

  std::vector<TileCoord> generators = options_.clock_generators;
  if (generators.empty()) generators.push_back(first_healthy_edge_tile(assembly));

  clock::ForwardingPlan clock_plan =
      clock::simulate_forwarding(assembly, generators);

  FaultMap usable = assembly;
  grid.for_each([&](TileCoord c) {
    if (assembly.is_healthy(c) &&
        !clock_plan.tiles[grid.index_of(c)].reached)
      usable.set_faulty(c, true);
  });

  FaultSchedule schedule =
      options_.schedule
          ? *options_.schedule
          : FaultSchedule::random(grid, options_.mix, options_.fault_horizon,
                                  rng);
  FaultInjector injector(usable, schedule);

  noc::NocOptions nopt = options_.noc;
  if (nopt.response_timeout == 0) {
    // Grid-scaled default: a worst-case relayed round trip is ~4 diameter
    // traversals; leave generous congestion slack on top.
    nopt.response_timeout =
        static_cast<std::uint64_t>(8 * (grid.width() + grid.height()) *
                                   std::max(1, nopt.mesh.link_latency)) +
        128;
  }
  noc::NocSystem noc(usable, nopt);

  // --- voltage-aware link BER (tentpole coupling: pdn -> noc) ------------
  // The BER map is derived from the regulated LDO output of each link's
  // endpoints and re-derived on every PDN re-solve; scheduled
  // LinkBerDegradation events are layered on top (latest event per link
  // wins, since they re-apply in order).
  const bool integrity_on = nopt.mesh.integrity.enabled;
  noc::LinkBerMap base_ber(grid);
  const auto ber_from_report = [&](const pdn::PdnReport& pr) {
    std::vector<double> v(grid.tile_count(), nopt.mesh.integrity.ber.nominal_v);
    for (std::size_t i = 0; i < v.size() && i < pr.tiles.size(); ++i)
      v[i] = pr.tiles[i].regulated_v;
    return noc::LinkBerMap::from_tile_voltages(grid, v,
                                               nopt.mesh.integrity.ber);
  };
  const auto rebind_ber = [&](const FaultInjector& inj) {
    if (!integrity_on) return;
    noc::LinkBerMap ber = base_ber;
    for (const FaultEvent& e : inj.ber_degradations())
      ber.set_ber(e.tile, e.link, e.magnitude);
    noc.set_link_ber(ber);
  };
  if (integrity_on) {
    pdn::WaferPdn wafer_pdn(config, options_.pdn.pdn);
    base_ber = ber_from_report(wafer_pdn.solve_uniform(options_.pdn.activity));
    rebind_ber(injector);
  }
  noc::LinkHealthMonitor monitor(grid, options_.link_health);

  noc::TrafficConfig traffic;
  traffic.pattern = options_.pattern;
  traffic.injection_rate = options_.injection_rate;

  DegradationReport report;
  report.initial_usable = usable.healthy_count();
  report.trajectory.push_back({0, report.initial_usable});

  std::vector<noc::CompletedTransaction> done;
  std::vector<std::uint64_t> outstanding;
  std::vector<RecoveryTracker> trackers;
  // Usable count after the previous event (the injector mutates the map
  // *before* returning notices, so each event's cost is measured against
  // the running count, direct kill and collateral alike).
  std::size_t prev_usable = report.initial_usable;

  // --- traffic window with fault injection -------------------------------
  for (std::uint64_t cycle = 0; cycle < options_.run_cycles; ++cycle) {
    for (const FaultNotice& n : injector.advance_to(noc.now())) {
      EventOutcome out;
      out.notice = n;
      out.applied_cycle = noc.now();

      switch (n.kind) {
        case RuntimeFaultKind::TileDeath:
        case RuntimeFaultKind::ClockGenLoss: {
          // Drop dead / silenced generators, then run the re-latch wave;
          // orphans lose their clock and become unusable.
          std::vector<TileCoord> survivors;
          for (TileCoord g : generators) {
            if (injector.faults().is_faulty(g)) continue;
            const auto& lost = injector.lost_generators();
            if (std::find(lost.begin(), lost.end(), g) != lost.end())
              continue;
            survivors.push_back(g);
          }
          clock::ReclockReport rr = clock::reselect_after_faults(
              clock_plan, injector.faults(), survivors);
          clock_plan = std::move(rr.plan);
          for (TileCoord t : rr.newly_orphaned) injector.mark_unusable(t);
          out.clock_relatched = static_cast<int>(rr.relatched.size());
          out.clock_orphaned = static_cast<int>(rr.newly_orphaned.size());
          break;
        }
        case RuntimeFaultKind::LdoBrownout: {
          const PdnDegradationReport pr = resolve_after_brownouts(
              config, injector.brownouts(), options_.pdn);
          for (TileCoord t : pr.unusable())
            if (injector.faults().is_healthy(t)) injector.mark_unusable(t);
          out.pdn_undervolted = static_cast<int>(pr.undervolted.size());
          if (integrity_on) {
            // The sagged plane shrinks link eye margins everywhere the
            // droop deepened: re-derive BER from the degraded solve.
            base_ber = ber_from_report(pr.degraded);
            rebind_ber(injector);
          }
          break;
        }
        case RuntimeFaultKind::LinkFailure:
        case RuntimeFaultKind::LinkRetirement:
          break;  // the injector already recorded it in the LinkFaultSet
        case RuntimeFaultKind::PacketCorruption:
          noc.inject_corruption(n.tile);
          break;
        case RuntimeFaultKind::LinkBerDegradation:
          rebind_ber(injector);  // channel quality only: no topology change
          break;
      }

      if (n.kind != RuntimeFaultKind::PacketCorruption &&
          n.kind != RuntimeFaultKind::LinkBerDegradation)
        noc.apply_fault_state(injector.faults(), injector.link_faults());

      out.usable_after = injector.faults().healthy_count();
      out.newly_unusable = prev_usable - out.usable_after;
      prev_usable = out.usable_after;
      prune_resolved(outstanding, noc);
      trackers.push_back({report.events.size(), outstanding});
      report.events.push_back(out);
      report.trajectory.push_back({noc.now(), out.usable_after});
    }

    // Inject traffic from currently usable tiles.
    const FaultMap& current = injector.faults();
    grid.for_each([&](TileCoord src) {
      if (current.is_faulty(src)) return;
      if (!rng.bernoulli(traffic.injection_rate)) return;
      const TileCoord dst = noc::pick_destination(current, src, traffic, rng);
      if (dst == src) return;
      if (const auto id = noc.issue(src, dst, noc::PacketType::ReadRequest))
        outstanding.push_back(*id);
    });

    noc.step(done);

    // Firmware link-health scrub: harvest the per-link error counters and
    // retire links whose observed error rate says they are dying, routing
    // around them before they fail hard.
    if (integrity_on &&
        (cycle + 1) % options_.link_health.scrub_period == 0) {
      for (const noc::RetiredLink& r : monitor.scrub(noc)) {
        injector.retire_link(r.tile, r.dir, noc.now());
        noc.retire_link(r.tile, r.dir);
        report.retirements.push_back(r);
      }
    }

    prune_resolved(outstanding, noc);
    for (auto it = trackers.begin(); it != trackers.end();) {
      prune_resolved(it->ids, noc);
      if (it->ids.empty()) {
        EventOutcome& out = report.events[it->event_index];
        out.recovery_cycles = noc.now() - out.applied_cycle;
        out.recovered = true;
        it = trackers.erase(it);
      } else {
        ++it;
      }
    }

    if ((cycle + 1) % options_.trajectory_sample_period == 0)
      report.trajectory.push_back(
          {noc.now(), injector.faults().healthy_count()});
  }

  // --- drain: everything in flight completes, retries, or is lost --------
  {
    WSP_TRACE_SPAN("campaign.drain");
    const std::uint64_t drain_limit = noc.now() + options_.drain_cycles;
    while (noc.inflight_transactions() > 0 && noc.now() < drain_limit) {
      noc.step(done);
      for (auto it = trackers.begin(); it != trackers.end();) {
        prune_resolved(it->ids, noc);
        if (it->ids.empty()) {
          EventOutcome& out = report.events[it->event_index];
          out.recovery_cycles = noc.now() - out.applied_cycle;
          out.recovered = true;
          it = trackers.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  report.drained = noc.inflight_transactions() == 0;
  for (const RecoveryTracker& t : trackers) {
    EventOutcome& out = report.events[t.event_index];
    out.recovery_cycles = noc.now() - out.applied_cycle;
    out.recovered = false;
  }

  report.total_cycles = noc.now();
  report.noc_stats = noc.stats();
  report.mesh_dropped =
      noc.network(noc::NetworkKind::XY).stats().dropped_at_fault +
      noc.network(noc::NetworkKind::XY).stats().purged_in_dead_router +
      noc.network(noc::NetworkKind::YX).stats().dropped_at_fault +
      noc.network(noc::NetworkKind::YX).stats().purged_in_dead_router;
  report.final_usable = injector.faults().healthy_count();
  report.trajectory.push_back({noc.now(), report.final_usable});

  // --- post-burst fabric census ------------------------------------------
  const std::vector<TileCoord> survivors = injector.faults().healthy_tiles();
  std::size_t reachable_pairs = 0;
  std::size_t total_pairs = 0;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    for (std::size_t j = 0; j < survivors.size(); ++j) {
      if (i == j) continue;
      ++total_pairs;
      if (noc.selector().plan(survivors[i], survivors[j]).reachable)
        ++reachable_pairs;
    }
  }
  report.pair_reachability_pct =
      total_pairs ? 100.0 * static_cast<double>(reachable_pairs) /
                        static_cast<double>(total_pairs)
                  : 100.0;
  report.single_system_image =
      total_pairs > 0 && reachable_pairs == total_pairs;

  // --- re-bring-up on the degraded wafer ---------------------------------
  bool has_edge_gen = false;
  arch::BringupOptions bopt;
  for (TileCoord g : generators)
    if (injector.faults().is_healthy(g)) {
      bopt.clock_generators.push_back(g);
      has_edge_gen = true;
    }
  if (!has_edge_gen) {
    grid.for_each([&](TileCoord c) {
      if (!has_edge_gen && grid.is_edge(c) &&
          injector.faults().is_healthy(c)) {
        bopt.clock_generators.push_back(c);
        has_edge_gen = true;
      }
    });
  }
  if (has_edge_gen)
    report.rebringup = arch::run_bringup(config, injector.faults(), bopt);
  return report;
}

std::vector<DegradationReport> DegradationCampaign::run_trials(
    int trials) const {
  require(trials >= 1, "at least one trial");
  // Trials are embarrassingly parallel: each one owns its wafer state and
  // is a pure function of (options, seed + t), so dispatching them onto the
  // exec pool keeps the report vector bit-identical for any thread count.
  // Nested parallel loops inside a trial (the PDN re-solves) degrade to
  // serial on the worker, so the pool is never oversubscribed.
  std::vector<DegradationReport> reports(static_cast<std::size_t>(trials));
  exec::parallel_for(
      reports.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t t = b; t < e; ++t) {
          CampaignOptions o = options_;
          o.seed = options_.seed + static_cast<std::uint64_t>(t);
          reports[t] = DegradationCampaign(o).run();
        }
      });
  return reports;
}

CampaignSummary summarize(const std::vector<DegradationReport>& reports) {
  CampaignSummary s;
  s.trials = static_cast<int>(reports.size());
  if (reports.empty()) return s;
  double usable_frac = 0.0;
  double recovery_sum = 0.0;
  std::size_t recovered_events = 0;
  std::uint64_t lost = 0;
  std::uint64_t issued = 0;
  for (const DegradationReport& r : reports) {
    usable_frac += r.initial_usable
                       ? static_cast<double>(r.final_usable) /
                             static_cast<double>(r.initial_usable)
                       : 0.0;
    s.mean_pair_reachability_pct += r.pair_reachability_pct;
    for (const EventOutcome& e : r.events)
      if (e.recovered) {
        recovery_sum += static_cast<double>(e.recovery_cycles);
        ++recovered_events;
      }
    lost += r.noc_stats.lost;
    issued += r.noc_stats.issued;
    if (r.single_system_image) ++s.single_system_image_survived;
    if (r.drained) ++s.fully_drained;
  }
  s.mean_final_usable_fraction = usable_frac / s.trials;
  s.mean_pair_reachability_pct /= s.trials;
  s.mean_recovery_cycles =
      recovered_events ? recovery_sum / static_cast<double>(recovered_events)
                       : 0.0;
  s.lost_per_issued =
      issued ? static_cast<double>(lost) / static_cast<double>(issued) : 0.0;
  return s;
}

void publish_metrics(const std::vector<DegradationReport>& reports,
                     obs::MetricsRegistry& registry) {
  obs::Counter& trials = registry.counter("campaign.trials");
  obs::Counter& events = registry.counter("campaign.events");
  obs::Counter& recovered = registry.counter("campaign.events_recovered");
  obs::Counter& retirements = registry.counter("campaign.retirements");
  obs::Counter& drained = registry.counter("campaign.drained");
  obs::Counter& ssi = registry.counter("campaign.single_system_image");
  obs::Counter& issued = registry.counter("campaign.noc.issued");
  obs::Counter& completed = registry.counter("campaign.noc.completed");
  obs::Counter& lost = registry.counter("campaign.noc.lost");
  obs::Counter& timeouts = registry.counter("campaign.noc.timeouts");
  obs::Counter& retries = registry.counter("campaign.noc.retries");
  obs::Histogram& recovery = registry.histogram("campaign.recovery_cycles");
  obs::Histogram& final_usable = registry.histogram("campaign.final_usable");

  double reachability_sum = 0.0;
  for (const DegradationReport& r : reports) {
    trials.add();
    events.add(r.events.size());
    retirements.add(r.retirements.size());
    if (r.drained) drained.add();
    if (r.single_system_image) ssi.add();
    issued.add(r.noc_stats.issued);
    completed.add(r.noc_stats.completed);
    lost.add(r.noc_stats.lost);
    timeouts.add(r.noc_stats.timeouts);
    retries.add(r.noc_stats.retries);
    for (const EventOutcome& e : r.events) {
      if (!e.recovered) continue;
      recovered.add();
      recovery.record(e.recovery_cycles);
    }
    final_usable.record(r.final_usable);
    reachability_sum += r.pair_reachability_pct;
  }
  registry.gauge("campaign.mean_pair_reachability_pct")
      .set(reports.empty() ? 0.0
                           : reachability_sum /
                                 static_cast<double>(reports.size()));
}

}  // namespace wsp::resilience
