#include "wsp/resilience/campaign.hpp"

#include <algorithm>
#include <csignal>
#include <utility>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/clock/forwarding.hpp"
#include "wsp/clock/recovery.hpp"
#include "wsp/common/error.hpp"
#include "wsp/exec/parallel_for.hpp"
#include "wsp/obs/trace.hpp"
#include "wsp/resilience/fault_injector.hpp"

namespace wsp::resilience {

namespace {

/// A transaction set watched until it fully resolves (completes or is
/// declared lost) — measures per-event recovery latency.
struct RecoveryTracker {
  std::size_t event_index;
  std::vector<std::uint64_t> ids;
};

void prune_resolved(std::vector<std::uint64_t>& ids,
                    const noc::NocSystem& noc) {
  ids.erase(std::remove_if(
                ids.begin(), ids.end(),
                [&](std::uint64_t id) { return !noc.is_inflight(id); }),
            ids.end());
}

TileCoord first_healthy_edge_tile(const FaultMap& faults) {
  const TileGrid& grid = faults.grid();
  TileCoord found{-1, -1};
  grid.for_each([&](TileCoord c) {
    if (found.x < 0 && grid.is_edge(c) && faults.is_healthy(c)) found = c;
  });
  require(found.x >= 0, "no healthy edge tile to generate the clock");
  return found;
}

}  // namespace

DegradationCampaign::DegradationCampaign(const CampaignOptions& options)
    : options_(options) {
  options_.config.validate();
  require(options_.run_cycles >= 1, "campaign needs at least one cycle");
  require(options_.injection_rate >= 0.0 && options_.injection_rate <= 1.0,
          "injection rate must be a probability");
  require(options_.trajectory_sample_period >= 1,
          "trajectory sample period must be >= 1");
}

DegradationReport DegradationCampaign::run() const {
  WSP_TRACE_SPAN("campaign.trial");
  const SystemConfig& config = options_.config;
  const TileGrid grid = config.grid();
  Rng rng(options_.seed);

  // --- assembly-time state: faults, clock plan, initial usable map -------
  FaultMap assembly =
      options_.initial_fault_probability > 0.0
          ? FaultMap::random_with_probability(
                grid, options_.initial_fault_probability, rng)
          : FaultMap(grid);

  std::vector<TileCoord> generators = options_.clock_generators;
  if (generators.empty()) generators.push_back(first_healthy_edge_tile(assembly));

  clock::ForwardingPlan clock_plan =
      clock::simulate_forwarding(assembly, generators);

  FaultMap usable = assembly;
  grid.for_each([&](TileCoord c) {
    if (assembly.is_healthy(c) &&
        !clock_plan.tiles[grid.index_of(c)].reached)
      usable.set_faulty(c, true);
  });

  FaultSchedule schedule =
      options_.schedule
          ? *options_.schedule
          : FaultSchedule::random(grid, options_.mix, options_.fault_horizon,
                                  rng);
  FaultInjector injector(usable, schedule);

  noc::NocOptions nopt = options_.noc;
  if (nopt.response_timeout == 0) {
    // Grid-scaled default: a worst-case relayed round trip is ~4 diameter
    // traversals; leave generous congestion slack on top.
    nopt.response_timeout =
        static_cast<std::uint64_t>(8 * (grid.width() + grid.height()) *
                                   std::max(1, nopt.mesh.link_latency)) +
        128;
  }
  noc::NocSystem noc(usable, nopt);

  // --- voltage-aware link BER (tentpole coupling: pdn -> noc) ------------
  // The BER map is derived from the regulated LDO output of each link's
  // endpoints and re-derived on every PDN re-solve; scheduled
  // LinkBerDegradation events are layered on top (latest event per link
  // wins, since they re-apply in order).
  const bool integrity_on = nopt.mesh.integrity.enabled;
  noc::LinkBerMap base_ber(grid);
  // Per-trial scratch reused by every rebind: copy-assigning base_ber into
  // it reuses the allocation, instead of constructing a fresh full map per
  // brownout event per trial.
  noc::LinkBerMap ber_scratch(grid);
  const auto ber_from_report = [&](const pdn::PdnReport& pr) {
    std::vector<double> v(grid.tile_count(), nopt.mesh.integrity.ber.nominal_v);
    for (std::size_t i = 0; i < v.size() && i < pr.tiles.size(); ++i)
      v[i] = pr.tiles[i].regulated_v;
    return noc::LinkBerMap::from_tile_voltages(grid, v,
                                               nopt.mesh.integrity.ber);
  };
  const auto rebind_ber = [&](const FaultInjector& inj) {
    if (!integrity_on) return;
    ber_scratch = base_ber;
    for (const FaultEvent& e : inj.ber_degradations())
      ber_scratch.set_ber(e.tile, e.link, e.magnitude);
    noc.set_link_ber(ber_scratch);
  };
  // Kept alive for the whole trial when coupling is on: the cached
  // multigrid hierarchy and the warm-start seed below are what make the
  // per-epoch re-solves cheap.
  std::optional<pdn::WaferPdn> wafer_pdn;
  if (integrity_on) {
    wafer_pdn.emplace(config, options_.pdn.pdn);
    base_ber = ber_from_report(wafer_pdn->solve_uniform(options_.pdn.activity));
    rebind_ber(injector);
  }
  const bool coupled = integrity_on && options_.cosim_epoch_cycles > 0;
  cosim::ActivityTracker activity;
  std::vector<std::vector<double>> epoch_power(1);
  std::vector<std::vector<double>> epoch_seed(1);
  noc::LinkHealthMonitor monitor(grid, options_.link_health);

  noc::TrafficConfig traffic;
  traffic.pattern = options_.pattern;
  traffic.injection_rate = options_.injection_rate;

  // Workload-driven trials: a non-Synthetic spec routes injection through
  // its generator (seeded per trial, so Monte Carlo trials differ exactly
  // as the synthetic path's trials do).  Synthetic keeps the inline loop
  // below byte for byte — the trial RNG's draw interleaving with fault
  // sampling is behavioural state existing campaigns depend on.
  std::unique_ptr<workloads::TrafficGenerator> workload_gen;
  if (options_.workload.cls != workloads::WorkloadClass::Synthetic) {
    workloads::WorkloadSpec spec = options_.workload;
    spec.seed = spec.seed + options_.seed;
    workload_gen = workloads::make_generator(spec, config, usable);
  }
  std::vector<workloads::Injection> workload_buf;

  DegradationReport report;
  report.initial_usable = usable.healthy_count();
  report.trajectory.push_back({0, report.initial_usable});

  std::vector<noc::CompletedTransaction> done;
  std::vector<std::uint64_t> outstanding;
  std::vector<RecoveryTracker> trackers;
  // Usable count after the previous event (the injector mutates the map
  // *before* returning notices, so each event's cost is measured against
  // the running count, direct kill and collateral alike).
  std::size_t prev_usable = report.initial_usable;

  // --- traffic window with fault injection -------------------------------
  for (std::uint64_t cycle = 0; cycle < options_.run_cycles; ++cycle) {
    for (const FaultNotice& n : injector.advance_to(noc.now())) {
      EventOutcome out;
      out.notice = n;
      out.applied_cycle = noc.now();

      switch (n.kind) {
        case RuntimeFaultKind::TileDeath:
        case RuntimeFaultKind::ClockGenLoss: {
          // Drop dead / silenced generators, then run the re-latch wave;
          // orphans lose their clock and become unusable.
          std::vector<TileCoord> survivors;
          for (TileCoord g : generators) {
            if (injector.faults().is_faulty(g)) continue;
            const auto& lost = injector.lost_generators();
            if (std::find(lost.begin(), lost.end(), g) != lost.end())
              continue;
            survivors.push_back(g);
          }
          clock::ReclockReport rr = clock::reselect_after_faults(
              clock_plan, injector.faults(), survivors);
          clock_plan = std::move(rr.plan);
          for (TileCoord t : rr.newly_orphaned) injector.mark_unusable(t);
          out.clock_relatched = static_cast<int>(rr.relatched.size());
          out.clock_orphaned = static_cast<int>(rr.newly_orphaned.size());
          break;
        }
        case RuntimeFaultKind::LdoBrownout: {
          const PdnDegradationReport pr = resolve_after_brownouts(
              config, injector.brownouts(), options_.pdn);
          for (TileCoord t : pr.unusable())
            if (injector.faults().is_healthy(t)) injector.mark_unusable(t);
          out.pdn_undervolted = static_cast<int>(pr.undervolted.size());
          if (integrity_on) {
            // The sagged plane shrinks link eye margins everywhere the
            // droop deepened: re-derive the base map from the degraded
            // solve (rebound below, after the fault state settles).
            base_ber = ber_from_report(pr.degraded);
          }
          break;
        }
        case RuntimeFaultKind::LinkFailure:
        case RuntimeFaultKind::LinkRetirement:
          break;  // the injector already recorded it in the LinkFaultSet
        case RuntimeFaultKind::PacketCorruption:
          noc.inject_corruption(n.tile);
          break;
        case RuntimeFaultKind::LinkBerDegradation:
          break;  // channel quality only: no topology change, rebind below
      }

      if (n.kind != RuntimeFaultKind::PacketCorruption &&
          n.kind != RuntimeFaultKind::LinkBerDegradation) {
        noc.apply_fault_state(injector.faults(), injector.link_faults());
        // The workload re-derives its phase geometry (ring membership,
        // halo neighbours, stage routes, vertex owners) from the same
        // settled fault state the NoC replans from.
        if (workload_gen) workload_gen->apply_fault_state(injector.faults());
      }
      // Rebind the BER map only after the fault *and* clock state have
      // settled: clock re-selection (TileDeath / ClockGenLoss) mutates the
      // usable map after any PDN-derived base map was computed, so the
      // rebind must follow the re-selection and the apply_fault_state —
      // not sit inside the individual event cases.
      if (n.kind != RuntimeFaultKind::PacketCorruption) rebind_ber(injector);

      out.usable_after = injector.faults().healthy_count();
      out.newly_unusable = prev_usable - out.usable_after;
      prev_usable = out.usable_after;
      prune_resolved(outstanding, noc);
      trackers.push_back({report.events.size(), outstanding});
      report.events.push_back(out);
      report.trajectory.push_back({noc.now(), out.usable_after});
    }

    // Inject traffic from currently usable tiles.
    if (workload_gen) {
      workload_buf.clear();
      workload_gen->emit(workload_buf);
      for (const workloads::Injection& inj : workload_buf) {
        if (inj.dst == inj.src) continue;
        if (const auto id = noc.issue(inj.src, inj.dst, inj.type,
                                      inj.payload))
          outstanding.push_back(*id);
      }
    } else {
      const FaultMap& current = injector.faults();
      grid.for_each([&](TileCoord src) {
        if (current.is_faulty(src)) return;
        if (!rng.bernoulli(traffic.injection_rate)) return;
        const TileCoord dst =
            noc::pick_destination(current, src, traffic, rng);
        if (dst == src) return;
        if (const auto id = noc.issue(src, dst, noc::PacketType::ReadRequest))
          outstanding.push_back(*id);
      });
    }

    noc.step(done);

    // Firmware link-health scrub: harvest the per-link error counters and
    // retire links whose observed error rate says they are dying, routing
    // around them before they fail hard.
    if (integrity_on &&
        (cycle + 1) % options_.link_health.scrub_period == 0) {
      for (const noc::RetiredLink& r : monitor.scrub(noc)) {
        injector.retire_link(r.tile, r.dir, noc.now());
        noc.retire_link(r.tile, r.dir);
        report.retirements.push_back(r);
      }
    }

    // PDN<->NoC epoch coupling: re-solve the planes from the NoC's
    // measured per-tile activity (warm-started from last epoch's
    // solution) and re-derive the voltage-aware BER map, so droop follows
    // the traffic that actually flowed and BER follows the droop.
    if (coupled && (cycle + 1) % options_.cosim_epoch_cycles == 0) {
      epoch_power[0] = cosim::activity_power_map(
          activity.harvest(noc), injector.faults(), config.tile_peak_power_w,
          options_.cosim_epoch_cycles, options_.cosim_scale);
      // Browned-out LDOs draw their elevated load wherever they sit.
      for (const TileCoord t : injector.brownouts())
        if (injector.faults().is_healthy(t))
          epoch_power[0][grid.index_of(t)] =
              config.tile_peak_power_w * options_.pdn.brownout_load_factor;
      base_ber =
          ber_from_report(wafer_pdn->solve_batch_warm(epoch_power,
                                                      epoch_seed)[0]);
      rebind_ber(injector);
    }

    prune_resolved(outstanding, noc);
    for (auto it = trackers.begin(); it != trackers.end();) {
      prune_resolved(it->ids, noc);
      if (it->ids.empty()) {
        EventOutcome& out = report.events[it->event_index];
        out.recovery_cycles = noc.now() - out.applied_cycle;
        out.recovered = true;
        it = trackers.erase(it);
      } else {
        ++it;
      }
    }

    if ((cycle + 1) % options_.trajectory_sample_period == 0)
      report.trajectory.push_back(
          {noc.now(), injector.faults().healthy_count()});
  }

  // --- drain: everything in flight completes, retries, or is lost --------
  {
    WSP_TRACE_SPAN("campaign.drain");
    const std::uint64_t drain_limit = noc.now() + options_.drain_cycles;
    while (noc.inflight_transactions() > 0 && noc.now() < drain_limit) {
      noc.step(done);
      for (auto it = trackers.begin(); it != trackers.end();) {
        prune_resolved(it->ids, noc);
        if (it->ids.empty()) {
          EventOutcome& out = report.events[it->event_index];
          out.recovery_cycles = noc.now() - out.applied_cycle;
          out.recovered = true;
          it = trackers.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  report.drained = noc.inflight_transactions() == 0;
  for (const RecoveryTracker& t : trackers) {
    EventOutcome& out = report.events[t.event_index];
    out.recovery_cycles = noc.now() - out.applied_cycle;
    out.recovered = false;
  }

  report.total_cycles = noc.now();
  report.noc_stats = noc.stats();
  report.mesh_dropped =
      noc.network(noc::NetworkKind::XY).stats().dropped_at_fault +
      noc.network(noc::NetworkKind::XY).stats().purged_in_dead_router +
      noc.network(noc::NetworkKind::YX).stats().dropped_at_fault +
      noc.network(noc::NetworkKind::YX).stats().purged_in_dead_router;
  report.final_usable = injector.faults().healthy_count();
  report.trajectory.push_back({noc.now(), report.final_usable});

  // --- post-burst fabric census ------------------------------------------
  const std::vector<TileCoord> survivors = injector.faults().healthy_tiles();
  std::size_t reachable_pairs = 0;
  std::size_t total_pairs = 0;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    for (std::size_t j = 0; j < survivors.size(); ++j) {
      if (i == j) continue;
      ++total_pairs;
      if (noc.selector().plan(survivors[i], survivors[j]).reachable)
        ++reachable_pairs;
    }
  }
  report.pair_reachability_pct =
      total_pairs ? 100.0 * static_cast<double>(reachable_pairs) /
                        static_cast<double>(total_pairs)
                  : 100.0;
  report.single_system_image =
      total_pairs > 0 && reachable_pairs == total_pairs;

  // --- re-bring-up on the degraded wafer ---------------------------------
  bool has_edge_gen = false;
  arch::BringupOptions bopt;
  for (TileCoord g : generators)
    if (injector.faults().is_healthy(g)) {
      bopt.clock_generators.push_back(g);
      has_edge_gen = true;
    }
  if (!has_edge_gen) {
    grid.for_each([&](TileCoord c) {
      if (!has_edge_gen && grid.is_edge(c) &&
          injector.faults().is_healthy(c)) {
        bopt.clock_generators.push_back(c);
        has_edge_gen = true;
      }
    });
  }
  if (has_edge_gen)
    report.rebringup = arch::run_bringup(config, injector.faults(), bopt);
  return report;
}

std::vector<DegradationReport> DegradationCampaign::run_trials(
    int trials) const {
  require(trials >= 1, "at least one trial");
  return run_trial_range(0, trials);
}

std::vector<DegradationReport> DegradationCampaign::run_trial_range(
    int first, int count) const {
  require(first >= 0, "first trial must be non-negative");
  require(count >= 1, "at least one trial");
  // Trials are embarrassingly parallel: each one owns its wafer state and
  // is a pure function of (options, seed + trial index), so dispatching
  // them onto the exec pool keeps the report vector bit-identical for any
  // thread count — and, because trial t always means seed + t no matter
  // which range (or process) computes it, for any sharding too.  Nested
  // parallel loops inside a trial (the PDN re-solves) degrade to serial on
  // the worker, so the pool is never oversubscribed.
  std::vector<DegradationReport> reports(static_cast<std::size_t>(count));
  exec::parallel_for(
      reports.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t t = b; t < e; ++t) {
          CampaignOptions o = options_;
          o.seed = options_.seed + static_cast<std::uint64_t>(first) +
                   static_cast<std::uint64_t>(t);
          reports[t] = DegradationCampaign(o).run();
        }
      });
  return reports;
}

namespace {

// The SIGTERM handler may only touch a sig_atomic_t; everything else (the
// snapshot flush, the throw) happens at the next trial-batch boundary on
// the normal control path.
volatile std::sig_atomic_t g_sigterm_flag = 0;

extern "C" void wsp_campaign_sigterm(int) { g_sigterm_flag = 1; }

/// Installs the flag-setting SIGTERM handler for the lifetime of one
/// checkpointed run and restores the previous disposition afterwards.
class ScopedSigtermFlag {
 public:
  explicit ScopedSigtermFlag(bool enable) : armed_(false) {
    if (!enable) return;
    g_sigterm_flag = 0;
    struct sigaction sa = {};
    sa.sa_handler = wsp_campaign_sigterm;
    sigemptyset(&sa.sa_mask);
    armed_ = sigaction(SIGTERM, &sa, &previous_) == 0;
  }
  ~ScopedSigtermFlag() {
    if (armed_) sigaction(SIGTERM, &previous_, nullptr);
  }
  ScopedSigtermFlag(const ScopedSigtermFlag&) = delete;
  ScopedSigtermFlag& operator=(const ScopedSigtermFlag&) = delete;

  bool fired() const { return armed_ && g_sigterm_flag != 0; }

 private:
  bool armed_;
  struct sigaction previous_ = {};
};

}  // namespace

std::vector<DegradationReport> DegradationCampaign::run_trials_checkpointed(
    int trials, const CampaignCheckpointOptions& ckpt) const {
  return run_trial_range_checkpointed(0, trials, trials, ckpt);
}

std::vector<DegradationReport>
DegradationCampaign::run_trial_range_checkpointed(
    int first, int count, int total_trials,
    const CampaignCheckpointOptions& ckpt) const {
  require(first >= 0, "first trial must be non-negative");
  require(count >= 1, "at least one trial");
  require(first + count <= total_trials,
          "trial range exceeds the campaign trial count");
  require(!ckpt.path.empty(), "checkpoint path must be set");
  require(ckpt.every_trials >= 1, "checkpoint period must be >= 1");
  const std::uint32_t fp = options_fingerprint();

  std::vector<DegradationReport> reports;
  bool resuming = false;
  CampaignReportsFile existing;
  try {
    existing = load_campaign_reports(ckpt.path);
    resuming = true;
  } catch (const ckpt::Error& e) {
    // No snapshot yet (first run, or the previous run died before its
    // first checkpoint) is the normal cold-start path.  Anything else —
    // corruption, truncation, a foreign frame — stays loud.
    if (e.kind() != ckpt::ErrorKind::Io) throw;
  }
  if (resuming) {
    if (existing.fingerprint != fp)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "checkpoint belongs to a different campaign");
    if (existing.first_trial != first ||
        existing.total_trials != total_trials ||
        existing.reports.size() > static_cast<std::size_t>(count))
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "checkpoint trial range does not match this run");
    reports = std::move(existing.reports);
  }

  const ScopedSigtermFlag preempt(ckpt.flush_on_sigterm);
  while (reports.size() < static_cast<std::size_t>(count)) {
    if (preempt.fired()) {
      // The per-batch snapshot below already persisted everything we ran;
      // this re-save only matters when resumption loaded trials without
      // running a batch yet.  Saving an identical snapshot is harmless
      // (write-temp-then-rename), so flush unconditionally and leave.
      save_campaign_reports(ckpt.path, {fp, total_trials, first, reports});
      throw CampaignPreempted(static_cast<int>(reports.size()));
    }
    const int done = static_cast<int>(reports.size());
    const int batch = std::min(ckpt.every_trials, count - done);
    std::vector<DegradationReport> chunk =
        run_trial_range(first + done, batch);
    for (DegradationReport& r : chunk) reports.push_back(std::move(r));
    save_campaign_reports(ckpt.path, {fp, total_trials, first, reports});
    if (ckpt.after_checkpoint)
      ckpt.after_checkpoint(static_cast<int>(reports.size()));
  }
  return reports;
}

CampaignSummary summarize(const std::vector<DegradationReport>& reports) {
  CampaignSummary s;
  s.trials = static_cast<int>(reports.size());
  if (reports.empty()) return s;
  double usable_frac = 0.0;
  double recovery_sum = 0.0;
  std::size_t recovered_events = 0;
  std::uint64_t lost = 0;
  std::uint64_t issued = 0;
  for (const DegradationReport& r : reports) {
    usable_frac += r.initial_usable
                       ? static_cast<double>(r.final_usable) /
                             static_cast<double>(r.initial_usable)
                       : 0.0;
    s.mean_pair_reachability_pct += r.pair_reachability_pct;
    for (const EventOutcome& e : r.events)
      if (e.recovered) {
        recovery_sum += static_cast<double>(e.recovery_cycles);
        ++recovered_events;
      }
    lost += r.noc_stats.lost;
    issued += r.noc_stats.issued;
    if (r.single_system_image) ++s.single_system_image_survived;
    if (r.drained) ++s.fully_drained;
  }
  s.mean_final_usable_fraction = usable_frac / s.trials;
  s.mean_pair_reachability_pct /= s.trials;
  s.mean_recovery_cycles =
      recovered_events ? recovery_sum / static_cast<double>(recovered_events)
                       : 0.0;
  s.lost_per_issued =
      issued ? static_cast<double>(lost) / static_cast<double>(issued) : 0.0;
  return s;
}

void publish_metrics(const std::vector<DegradationReport>& reports,
                     obs::MetricsRegistry& registry) {
  obs::Counter& trials = registry.counter("campaign.trials");
  obs::Counter& events = registry.counter("campaign.events");
  obs::Counter& recovered = registry.counter("campaign.events_recovered");
  obs::Counter& retirements = registry.counter("campaign.retirements");
  obs::Counter& drained = registry.counter("campaign.drained");
  obs::Counter& ssi = registry.counter("campaign.single_system_image");
  obs::Counter& issued = registry.counter("campaign.noc.issued");
  obs::Counter& completed = registry.counter("campaign.noc.completed");
  obs::Counter& lost = registry.counter("campaign.noc.lost");
  obs::Counter& timeouts = registry.counter("campaign.noc.timeouts");
  obs::Counter& retries = registry.counter("campaign.noc.retries");
  obs::Histogram& recovery = registry.histogram("campaign.recovery_cycles");
  obs::Histogram& final_usable = registry.histogram("campaign.final_usable");

  double reachability_sum = 0.0;
  for (const DegradationReport& r : reports) {
    trials.add();
    events.add(r.events.size());
    retirements.add(r.retirements.size());
    if (r.drained) drained.add();
    if (r.single_system_image) ssi.add();
    issued.add(r.noc_stats.issued);
    completed.add(r.noc_stats.completed);
    lost.add(r.noc_stats.lost);
    timeouts.add(r.noc_stats.timeouts);
    retries.add(r.noc_stats.retries);
    for (const EventOutcome& e : r.events) {
      if (!e.recovered) continue;
      recovered.add();
      recovery.record(e.recovery_cycles);
    }
    final_usable.record(r.final_usable);
    reachability_sum += r.pair_reachability_pct;
  }
  registry.gauge("campaign.mean_pair_reachability_pct")
      .set(reports.empty() ? 0.0
                           : reachability_sum /
                                 static_cast<double>(reports.size()));
}

// --- checkpointing ----------------------------------------------------------

namespace {

constexpr std::uint32_t kCampaignKind = ckpt::fourcc("CAMP");
constexpr std::uint32_t kCampaignStateVersion = 1;

void save_notice(ckpt::Writer& w, const FaultNotice& n) {
  w.u8(static_cast<std::uint8_t>(n.kind));
  w.i32(n.tile.x);
  w.i32(n.tile.y);
  w.b(n.link.has_value());
  if (n.link) w.u8(static_cast<std::uint8_t>(*n.link));
  w.u64(n.cycle);
  w.f64(n.magnitude);
}

FaultNotice load_notice(ckpt::Reader& r) {
  FaultNotice n;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(RuntimeFaultKind::LinkBerDegradation))
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "fault notice kind out of range");
  n.kind = static_cast<RuntimeFaultKind>(kind);
  n.tile.x = r.i32();
  n.tile.y = r.i32();
  if (r.b()) {
    const std::uint8_t d = r.u8();
    if (d > 3)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "fault notice link direction out of range");
    n.link = static_cast<Direction>(d);
  }
  n.cycle = r.u64();
  n.magnitude = r.f64();
  return n;
}

}  // namespace

void save_report(ckpt::Writer& w, const DegradationReport& report) {
  w.tag(ckpt::fourcc("DRPT"));
  w.tag(ckpt::fourcc("TRAJ"));
  w.u64(report.trajectory.size());
  for (const TrajectoryPoint& p : report.trajectory) {
    w.u64(p.cycle);
    w.u64(p.usable_tiles);
  }
  w.tag(ckpt::fourcc("EVNT"));
  w.u64(report.events.size());
  for (const EventOutcome& e : report.events) {
    save_notice(w, e.notice);
    w.u64(e.applied_cycle);
    w.u64(e.usable_after);
    w.u64(e.newly_unusable);
    w.u64(e.recovery_cycles);
    w.b(e.recovered);
    w.i32(e.clock_relatched);
    w.i32(e.clock_orphaned);
    w.i32(e.pdn_undervolted);
  }
  w.tag(ckpt::fourcc("RETD"));
  w.u64(report.retirements.size());
  for (const noc::RetiredLink& l : report.retirements) {
    w.i32(l.tile.x);
    w.i32(l.tile.y);
    w.u8(static_cast<std::uint8_t>(l.dir));
    w.u64(l.cycle);
    w.u64(l.errors);
    w.u64(l.traversals);
  }
  w.tag(ckpt::fourcc("NSTA"));
  const noc::NocStats& s = report.noc_stats;
  w.u64(s.issued);
  w.u64(s.completed);
  w.u64(s.unreachable);
  w.u64(s.relayed);
  w.u64(s.latency_sum);
  w.u64(s.latency_max);
  w.u64(s.timeouts);
  w.u64(s.retries);
  w.u64(s.lost);
  w.u64(s.stale_packets);
  w.u64(s.replans);
  w.u64(s.corrupted);
  w.u64(s.crc_detected);
  w.u64(s.link_retransmits);
  w.u64(s.links_retired);
  w.u64(s.escapes);
  w.u64(report.mesh_dropped);
  w.u64(report.initial_usable);
  w.u64(report.final_usable);
  w.f64(report.pair_reachability_pct);
  w.b(report.single_system_image);
  w.b(report.drained);
  w.u64(report.total_cycles);
  w.b(report.rebringup.has_value());
  if (report.rebringup) {
    // Summary numbers only: the nested clock plan / duty / skew /
    // connectivity reports are re-derivable by re-running bring-up.
    w.u64(report.rebringup->faulty_tiles);
    w.u64(report.rebringup->screening_tcks);
    w.u64(report.rebringup->usable_tiles);
    w.b(report.rebringup->single_system_image);
  }
}

DegradationReport load_report(ckpt::Reader& r) {
  DegradationReport report;
  r.expect_tag(ckpt::fourcc("DRPT"), "DegradationReport");
  r.expect_tag(ckpt::fourcc("TRAJ"), "report trajectory");
  const std::size_t n_traj = r.length(16);
  report.trajectory.resize(n_traj);
  for (TrajectoryPoint& p : report.trajectory) {
    p.cycle = r.u64();
    p.usable_tiles = static_cast<std::size_t>(r.u64());
  }
  r.expect_tag(ckpt::fourcc("EVNT"), "report events");
  const std::size_t n_events = r.length(71);
  report.events.resize(n_events);
  for (EventOutcome& e : report.events) {
    e.notice = load_notice(r);
    e.applied_cycle = r.u64();
    e.usable_after = static_cast<std::size_t>(r.u64());
    e.newly_unusable = static_cast<std::size_t>(r.u64());
    e.recovery_cycles = r.u64();
    e.recovered = r.b();
    e.clock_relatched = r.i32();
    e.clock_orphaned = r.i32();
    e.pdn_undervolted = r.i32();
  }
  r.expect_tag(ckpt::fourcc("RETD"), "report retirements");
  const std::size_t n_ret = r.length(33);
  report.retirements.resize(n_ret);
  for (noc::RetiredLink& l : report.retirements) {
    l.tile.x = r.i32();
    l.tile.y = r.i32();
    const std::uint8_t d = r.u8();
    if (d > 3)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "retired-link direction out of range");
    l.dir = static_cast<Direction>(d);
    l.cycle = r.u64();
    l.errors = r.u64();
    l.traversals = r.u64();
  }
  r.expect_tag(ckpt::fourcc("NSTA"), "report NoC stats");
  noc::NocStats& s = report.noc_stats;
  s.issued = r.u64();
  s.completed = r.u64();
  s.unreachable = r.u64();
  s.relayed = r.u64();
  s.latency_sum = r.u64();
  s.latency_max = r.u64();
  s.timeouts = r.u64();
  s.retries = r.u64();
  s.lost = r.u64();
  s.stale_packets = r.u64();
  s.replans = r.u64();
  s.corrupted = r.u64();
  s.crc_detected = r.u64();
  s.link_retransmits = r.u64();
  s.links_retired = r.u64();
  s.escapes = r.u64();
  report.mesh_dropped = r.u64();
  report.initial_usable = static_cast<std::size_t>(r.u64());
  report.final_usable = static_cast<std::size_t>(r.u64());
  report.pair_reachability_pct = r.f64();
  report.single_system_image = r.b();
  report.drained = r.b();
  report.total_cycles = r.u64();
  if (r.b()) {
    arch::BringupReport b;
    b.faulty_tiles = static_cast<std::size_t>(r.u64());
    b.screening_tcks = r.u64();
    b.usable_tiles = static_cast<std::size_t>(r.u64());
    b.single_system_image = r.b();
    report.rebringup = std::move(b);
  }
  return report;
}

std::uint32_t DegradationCampaign::options_fingerprint() const {
  ckpt::Writer w;
  // Every primitive SystemConfig parameter in declaration order (Table-I
  // derived quantities are functions of these), then the campaign knobs.
  const SystemConfig& c = options_.config;
  w.i32(c.array_width);
  w.i32(c.array_height);
  w.i32(c.cores_per_tile);
  w.i32(c.chiplets_per_tile);
  w.u64(c.private_mem_per_core_bytes);
  w.i32(c.banks_per_memory_chiplet);
  w.i32(c.shared_banks_per_tile);
  w.u64(c.bank_bytes);
  w.i32(c.bank_port_bytes);
  w.f64(c.nominal_freq_hz);
  w.f64(c.max_forwarded_clock_hz);
  w.f64(c.pll_input_min_hz);
  w.f64(c.pll_input_max_hz);
  w.f64(c.pll_output_max_hz);
  w.i32(c.clock_select_toggle_count);
  w.f64(c.nominal_voltage_v);
  w.f64(c.regulated_min_v);
  w.f64(c.regulated_max_v);
  w.f64(c.ff_corner_voltage_v);
  w.f64(c.edge_supply_voltage_v);
  w.f64(c.min_center_supply_v);
  w.f64(c.tile_peak_power_w);
  w.f64(c.decap_per_tile_f);
  w.f64(c.max_load_step_a);
  w.f64(c.decap_area_fraction);
  w.i32(c.substrate_metal_layers);
  w.f64(c.substrate_metal_thickness_m);
  w.f64(c.copper_sheet_resistance_ohm_per_sq);
  w.i32(c.ios_per_compute_chiplet);
  w.i32(c.ios_per_memory_chiplet);
  w.f64(c.io_pitch_m);
  w.f64(c.wiring_pitch_m);
  w.f64(c.io_cell_area_m2);
  w.f64(c.io_energy_per_bit_j);
  w.f64(c.io_signaling_rate_hz);
  w.f64(c.max_link_length_m);
  w.i32(c.signal_routing_layers);
  w.f64(c.pillar_bond_yield);
  w.i32(c.pillars_per_pad);
  w.i32(c.link_width_bits_per_side);
  w.i32(c.packet_bits);
  w.i32(c.payload_bits);
  w.i32(c.num_networks);
  w.i32(c.buses_per_network_per_side);
  w.f64(c.geometry.compute_chiplet_width_m);
  w.f64(c.geometry.compute_chiplet_height_m);
  w.f64(c.geometry.memory_chiplet_width_m);
  w.f64(c.geometry.memory_chiplet_height_m);
  w.f64(c.geometry.inter_chiplet_gap_m);
  w.f64(c.edge_io_margin_m);
  w.f64(c.jtag_tck_hz);
  w.i32(c.jtag_chains);
  w.i32(c.reticle_tiles_x);
  w.i32(c.reticle_tiles_y);
  w.f64(c.intra_reticle_wire_width_m);
  w.f64(c.intra_reticle_wire_space_m);
  w.f64(c.stitch_wire_width_m);
  w.f64(c.stitch_wire_space_m);

  w.u64(options_.seed);
  w.f64(options_.initial_fault_probability);
  w.u64(options_.mix.tile_deaths);
  w.u64(options_.mix.link_failures);
  w.u64(options_.mix.ldo_brownouts);
  w.u64(options_.mix.clock_gen_losses);
  w.u64(options_.mix.packet_corruptions);
  w.u64(options_.mix.link_ber_degradations);
  w.u64(options_.fault_horizon);
  w.b(options_.schedule.has_value());
  if (options_.schedule) options_.schedule->save_state(w);
  w.u64(options_.run_cycles);
  w.u64(options_.drain_cycles);
  w.u8(static_cast<std::uint8_t>(options_.pattern));
  w.f64(options_.injection_rate);

  const noc::NocOptions& n = options_.noc;
  w.i32(n.mesh.input_queue_capacity);
  w.i32(n.mesh.link_latency);
  w.b(n.mesh.adaptive_odd_even);
  // n.mesh.shards deliberately excluded: pure parallel grain.
  w.b(n.mesh.integrity.enabled);
  w.b(n.mesh.integrity.retransmit);
  w.i32(n.mesh.integrity.max_retransmits);
  w.u64(n.mesh.integrity.seed);
  w.f64(n.mesh.integrity.ber.nominal_v);
  w.f64(n.mesh.integrity.ber.floor_ber);
  w.f64(n.mesh.integrity.ber.volts_per_decade);
  w.f64(n.mesh.integrity.ber.max_ber);
  w.i32(n.service_latency);
  w.i32(n.relay_latency);
  w.u64(n.response_timeout);
  w.i32(n.max_retries);
  w.u64(n.retry_backoff_base);

  const PdnDegradationOptions& p = options_.pdn;
  w.i32(p.pdn.nodes_per_tile);
  w.f64(p.pdn.plane_slotting_factor);
  for (bool edge : p.pdn.powered_edges) w.b(edge);
  w.u8(static_cast<std::uint8_t>(p.pdn.load_model));
  w.f64(p.pdn.ldo.target_v);
  w.f64(p.pdn.ldo.min_output_v);
  w.f64(p.pdn.ldo.max_output_v);
  w.f64(p.pdn.ldo.dropout_v);
  w.f64(p.pdn.ldo.max_input_v);
  w.f64(p.pdn.ldo.min_input_v);
  w.f64(p.pdn.ldo.quiescent_a);
  w.f64(p.pdn.ldo.max_load_a);
  w.f64(p.pdn.ldo.line_regulation);
  w.f64(p.activity);
  w.f64(p.brownout_load_factor);

  w.u64(options_.clock_generators.size());
  for (const TileCoord& g : options_.clock_generators) {
    w.i32(g.x);
    w.i32(g.y);
  }
  w.u64(options_.trajectory_sample_period);
  w.u64(options_.link_health.scrub_period);
  w.u64(options_.link_health.min_traversals);
  w.u64(options_.link_health.min_errors);
  w.f64(options_.link_health.retire_error_rate);

  w.u64(options_.cosim_epoch_cycles);
  w.f64(options_.cosim_scale.idle_fraction);
  w.f64(options_.cosim_scale.injection_weight);
  w.f64(options_.cosim_scale.traversal_weight);
  w.f64(options_.cosim_scale.retransmit_weight);
  w.f64(options_.cosim_scale.flits_per_cycle_at_peak);

  workloads::save_spec(w, options_.workload);

  return ckpt::crc32(w.bytes().data(), w.size());
}

void save_campaign_reports(const std::string& path,
                           const CampaignReportsFile& file) {
  ckpt::Writer w;
  w.u32(file.fingerprint);
  w.i32(file.total_trials);
  w.i32(file.first_trial);
  w.u64(file.reports.size());
  for (const DegradationReport& r : file.reports) save_report(w, r);
  ckpt::save_frame_file(path, kCampaignKind, kCampaignStateVersion, w);
}

CampaignReportsFile load_campaign_reports(const std::string& path) {
  const ckpt::Frame frame = ckpt::load_frame_file(path, kCampaignKind);
  if (frame.state_version != kCampaignStateVersion)
    throw ckpt::Error(ckpt::ErrorKind::VersionMismatch,
                      "campaign snapshot schema revision unknown");
  ckpt::Reader r(frame.payload);
  CampaignReportsFile file;
  file.fingerprint = r.u32();
  file.total_trials = r.i32();
  file.first_trial = r.i32();
  if (file.total_trials < 1 || file.first_trial < 0 ||
      file.first_trial > file.total_trials)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "campaign snapshot trial range is malformed");
  // A report is at least ~215 bytes; 64 is a safe allocation guard.
  const std::size_t n = r.length(64);
  if (file.first_trial + static_cast<int>(n) > file.total_trials)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "campaign snapshot holds more reports than trials");
  file.reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) file.reports.push_back(load_report(r));
  if (!r.done())
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "trailing bytes after campaign reports");
  return file;
}

std::vector<DegradationReport> merge_campaign_reports(
    std::vector<CampaignReportsFile> shards, std::uint32_t fingerprint) {
  if (shards.empty())
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "no shard files to merge");
  std::sort(shards.begin(), shards.end(),
            [](const CampaignReportsFile& a, const CampaignReportsFile& b) {
              return a.first_trial < b.first_trial;
            });
  // Every rejection names the offending shard's trial range: with dozens
  // of partial files on the floor, "shard trials [12, 16)" points at one.
  const auto shard_name = [](const CampaignReportsFile& s) {
    return "shard trials [" + std::to_string(s.first_trial) + ", " +
           std::to_string(s.first_trial + static_cast<int>(s.reports.size())) +
           ")";
  };
  const int total = shards.front().total_trials;
  std::vector<DegradationReport> merged;
  int next = 0;
  const CampaignReportsFile* prev = nullptr;
  for (CampaignReportsFile& s : shards) {
    if (s.fingerprint != fingerprint)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        shard_name(s) +
                            " belongs to a different campaign "
                            "(fingerprint mismatch)");
    if (s.total_trials != total)
      throw ckpt::Error(
          ckpt::ErrorKind::SchemaMismatch,
          shard_name(s) + " disagrees on the campaign trial count (" +
              std::to_string(s.total_trials) + " vs " + std::to_string(total) +
              ")");
    if (prev && s.first_trial == prev->first_trial)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "duplicate " + shard_name(s));
    if (s.first_trial < next)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        shard_name(s) + " overlaps the preceding shard");
    if (s.first_trial > next)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "gap before " + shard_name(s) + ": trials [" +
                            std::to_string(next) + ", " +
                            std::to_string(s.first_trial) + ") missing");
    next += static_cast<int>(s.reports.size());
    prev = &s;
    for (DegradationReport& r : s.reports) merged.push_back(std::move(r));
  }
  if (next != total)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "merged shards cover trials [0, " +
                          std::to_string(next) + ") of " +
                          std::to_string(total) + " — tail missing");
  return merged;
}

}  // namespace wsp::resilience
