// Applies a FaultSchedule to a live simulation.
//
// The injector owns the authoritative runtime fault state — the mutable
// FaultMap and LinkFaultSet — and a FaultBus.  advance_to(cycle) applies
// every event that has come due, mutates the state, and publishes a
// FaultNotice per event so subscribed subsystems (NoC replan, clock
// re-selection, PDN re-solve) can react.  Transient events (packet
// corruption) and policy-level events (brownouts, generator losses) do not
// mutate the fault map directly: the injector records them and the
// degradation layer decides which tiles become unusable.
#pragma once

#include <cstdint>
#include <vector>

#include "wsp/common/fault_map.hpp"
#include "wsp/common/fault_observer.hpp"
#include "wsp/resilience/fault_schedule.hpp"

namespace wsp::resilience {

class FaultInjector {
 public:
  FaultInjector(const FaultMap& initial, FaultSchedule schedule);

  /// Applies every event with event.cycle <= cycle, in schedule order,
  /// publishing each on the bus after its mutation.  Returns the notices
  /// applied by this call (empty when nothing came due).
  std::vector<FaultNotice> advance_to(std::uint64_t cycle);

  bool exhausted() const { return next_ >= schedule_.size(); }
  std::uint64_t next_due_cycle() const;  ///< ~0ull when exhausted

  const FaultMap& faults() const { return faults_; }
  const LinkFaultSet& link_faults() const { return links_; }
  FaultBus& bus() { return bus_; }

  /// Retires a link on the health monitor's verdict: marks it failed and
  /// publishes a LinkRetirement notice so observers treat it like any
  /// other runtime fault.  No-op (returns false) when already failed.
  bool retire_link(TileCoord tile, Direction d, std::uint64_t cycle);

  /// Accumulated LdoBrownout targets (the PDN layer re-solves from these).
  const std::vector<TileCoord>& brownouts() const { return brownouts_; }
  /// Accumulated ClockGenLoss targets (the clock layer drops these from
  /// the generator list).
  const std::vector<TileCoord>& lost_generators() const {
    return lost_generators_;
  }

  /// Accumulated LinkBerDegradation events, in application order.  The
  /// campaign layers these on top of each PDN-derived BER map (the most
  /// recent event per link wins when reapplied in order).
  const std::vector<FaultEvent>& ber_degradations() const {
    return ber_degradations_;
  }

  /// Marks extra tiles unusable (e.g. tiles the PDN re-solve pushed out of
  /// regulation, or tiles the clock wave orphaned) without an event of
  /// their own — degradation consequences, not injected faults.
  void mark_unusable(TileCoord tile) { faults_.set_faulty(tile, true); }

  /// Checkpoint hooks (wsp::ckpt): fault map, link faults, schedule,
  /// cursor, and the accumulated brownout / generator-loss / BER lists
  /// round-trip.  FaultBus subscriptions are raw observer pointers and are
  /// deliberately NOT captured — owners re-subscribe after a load, exactly
  /// as after construction.  Load throws ckpt::Error{TopologyMismatch} for
  /// a snapshot taken on a different grid and leaves the injector
  /// unchanged on any failure.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  FaultMap faults_;
  LinkFaultSet links_;
  FaultSchedule schedule_;
  std::size_t next_ = 0;
  FaultBus bus_;
  std::vector<TileCoord> brownouts_;
  std::vector<TileCoord> lost_generators_;
  std::vector<FaultEvent> ber_degradations_;
};

}  // namespace wsp::resilience
