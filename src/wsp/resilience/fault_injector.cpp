#include "wsp/resilience/fault_injector.hpp"

#include <limits>
#include <utility>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"

namespace wsp::resilience {

FaultInjector::FaultInjector(const FaultMap& initial, FaultSchedule schedule)
    : faults_(initial),
      links_(initial.grid()),
      schedule_(std::move(schedule)) {}

std::uint64_t FaultInjector::next_due_cycle() const {
  return exhausted() ? std::numeric_limits<std::uint64_t>::max()
                     : schedule_.events()[next_].cycle;
}

std::vector<FaultNotice> FaultInjector::advance_to(std::uint64_t cycle) {
  std::vector<FaultNotice> applied;
  const auto& events = schedule_.events();
  while (next_ < events.size() && events[next_].cycle <= cycle) {
    const FaultEvent& e = events[next_++];
    require(faults_.grid().contains(e.tile),
            "scheduled fault targets a tile outside the grid");

    FaultNotice notice;
    notice.kind = e.kind;
    notice.tile = e.tile;
    notice.cycle = e.cycle;

    switch (e.kind) {
      case RuntimeFaultKind::TileDeath:
        faults_.set_faulty(e.tile, true);
        break;
      case RuntimeFaultKind::LinkFailure:
        links_.set_failed(e.tile, e.link, true);
        notice.link = e.link;
        break;
      case RuntimeFaultKind::LdoBrownout:
        brownouts_.push_back(e.tile);
        break;
      case RuntimeFaultKind::ClockGenLoss:
        lost_generators_.push_back(e.tile);
        break;
      case RuntimeFaultKind::PacketCorruption:
        break;  // transient: no state mutation, observers act on the notice
      case RuntimeFaultKind::LinkRetirement:
        // Normally monitor-driven (retire_link), but scheduling one works:
        // it is a link failure with a different provenance.
        links_.set_failed(e.tile, e.link, true);
        notice.link = e.link;
        break;
      case RuntimeFaultKind::LinkBerDegradation:
        ber_degradations_.push_back(e);
        notice.link = e.link;
        notice.magnitude = e.magnitude;
        break;  // channel-quality change: the campaign re-derives BER maps
    }

    bus_.publish(notice, faults_, links_);
    applied.push_back(notice);
  }
  return applied;
}

bool FaultInjector::retire_link(TileCoord tile, Direction d,
                                std::uint64_t cycle) {
  if (!faults_.grid().contains(tile) || !faults_.grid().neighbor(tile, d))
    return false;
  if (links_.is_failed(tile, d)) return false;
  links_.set_failed(tile, d, true);
  FaultNotice notice;
  notice.kind = RuntimeFaultKind::LinkRetirement;
  notice.tile = tile;
  notice.link = d;
  notice.cycle = cycle;
  bus_.publish(notice, faults_, links_);
  return true;
}

// --- checkpointing ----------------------------------------------------------

void FaultInjector::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("FINJ"));
  ckpt::save_fault_map(w, faults_);
  ckpt::save_link_faults(w, links_);
  schedule_.save_state(w);
  w.u64(next_);
  w.u64(brownouts_.size());
  for (const TileCoord& t : brownouts_) {
    w.i32(t.x);
    w.i32(t.y);
  }
  w.u64(lost_generators_.size());
  for (const TileCoord& t : lost_generators_) {
    w.i32(t.x);
    w.i32(t.y);
  }
  w.u64(ber_degradations_.size());
  for (const FaultEvent& e : ber_degradations_) save_fault_event(w, e);
}

void FaultInjector::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("FINJ"), "FaultInjector");
  // Stage everything, commit only once the whole section validated: a
  // rejected snapshot leaves the injector in its pre-load state.
  FaultMap faults = ckpt::load_fault_map(r, &faults_.grid());
  LinkFaultSet links = ckpt::load_link_faults(r, &faults_.grid());
  FaultSchedule schedule;
  schedule.load_state(r);
  const std::uint64_t next = r.u64();
  if (next > schedule.size())
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "schedule cursor past the end of the schedule");
  const auto load_tiles = [&](const char* what) {
    const std::size_t n = r.length(8);  // 2*i32 per tile
    std::vector<TileCoord> tiles(n);
    for (TileCoord& t : tiles) {
      t.x = r.i32();
      t.y = r.i32();
      if (!faults.grid().contains(t))
        throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch, what);
    }
    return tiles;
  };
  std::vector<TileCoord> brownouts =
      load_tiles("brownout target outside the grid");
  std::vector<TileCoord> lost =
      load_tiles("lost clock generator outside the grid");
  const std::size_t n_ber = r.length(26);
  std::vector<FaultEvent> ber(n_ber);
  for (FaultEvent& e : ber) e = load_fault_event(r);

  faults_ = std::move(faults);
  links_ = std::move(links);
  schedule_ = std::move(schedule);
  next_ = static_cast<std::size_t>(next);
  brownouts_ = std::move(brownouts);
  lost_generators_ = std::move(lost);
  ber_degradations_ = std::move(ber);
}

}  // namespace wsp::resilience
