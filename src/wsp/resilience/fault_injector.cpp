#include "wsp/resilience/fault_injector.hpp"

#include <limits>

#include "wsp/common/error.hpp"

namespace wsp::resilience {

FaultInjector::FaultInjector(const FaultMap& initial, FaultSchedule schedule)
    : faults_(initial),
      links_(initial.grid()),
      schedule_(std::move(schedule)) {}

std::uint64_t FaultInjector::next_due_cycle() const {
  return exhausted() ? std::numeric_limits<std::uint64_t>::max()
                     : schedule_.events()[next_].cycle;
}

std::vector<FaultNotice> FaultInjector::advance_to(std::uint64_t cycle) {
  std::vector<FaultNotice> applied;
  const auto& events = schedule_.events();
  while (next_ < events.size() && events[next_].cycle <= cycle) {
    const FaultEvent& e = events[next_++];
    require(faults_.grid().contains(e.tile),
            "scheduled fault targets a tile outside the grid");

    FaultNotice notice;
    notice.kind = e.kind;
    notice.tile = e.tile;
    notice.cycle = e.cycle;

    switch (e.kind) {
      case RuntimeFaultKind::TileDeath:
        faults_.set_faulty(e.tile, true);
        break;
      case RuntimeFaultKind::LinkFailure:
        links_.set_failed(e.tile, e.link, true);
        notice.link = e.link;
        break;
      case RuntimeFaultKind::LdoBrownout:
        brownouts_.push_back(e.tile);
        break;
      case RuntimeFaultKind::ClockGenLoss:
        lost_generators_.push_back(e.tile);
        break;
      case RuntimeFaultKind::PacketCorruption:
        break;  // transient: no state mutation, observers act on the notice
      case RuntimeFaultKind::LinkRetirement:
        // Normally monitor-driven (retire_link), but scheduling one works:
        // it is a link failure with a different provenance.
        links_.set_failed(e.tile, e.link, true);
        notice.link = e.link;
        break;
      case RuntimeFaultKind::LinkBerDegradation:
        ber_degradations_.push_back(e);
        notice.link = e.link;
        notice.magnitude = e.magnitude;
        break;  // channel-quality change: the campaign re-derives BER maps
    }

    bus_.publish(notice, faults_, links_);
    applied.push_back(notice);
  }
  return applied;
}

bool FaultInjector::retire_link(TileCoord tile, Direction d,
                                std::uint64_t cycle) {
  if (!faults_.grid().contains(tile) || !faults_.grid().neighbor(tile, d))
    return false;
  if (links_.is_failed(tile, d)) return false;
  links_.set_failed(tile, d, true);
  FaultNotice notice;
  notice.kind = RuntimeFaultKind::LinkRetirement;
  notice.tile = tile;
  notice.link = d;
  notice.cycle = cycle;
  bus_.publish(notice, faults_, links_);
  return true;
}

}  // namespace wsp::resilience
