// Monte Carlo degradation campaigns: the runtime half of the paper's
// resiliency story, measured end to end.
//
// A campaign replays a seeded FaultSchedule against a live wafer while
// synthetic traffic runs, coordinating the three degradation layers as
// each fault lands:
//   * NoC      — fault-map replan + end-to-end timeout/bounded-retry
//                (NocSystem), falling back X-Y -> Y-X -> relayed;
//   * clock    — ClockSelector re-latch wave for tiles whose forwarded
//                source died (clock::reselect_after_faults), orphans
//                marked unusable;
//   * PDN      — droop re-solve with browned-out LDO loads
//                (resolve_after_brownouts), undervolted tiles marked
//                unusable.
// It then drains all traffic, censuses pair reachability on the surviving
// fabric, and re-runs arch bring-up so the wafer's post-burst single-
// system-image status is established the same way assembly-time bring-up
// establishes it.  Everything is deterministic in the seed: two runs with
// identical options produce bit-identical reports.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "wsp/arch/bringup.hpp"
#include "wsp/common/config.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/cosim/cosim.hpp"
#include "wsp/noc/link_health.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/noc/traffic.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/resilience/fault_schedule.hpp"
#include "wsp/resilience/pdn_degradation.hpp"
#include "wsp/workloads/traffic_gen.hpp"

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::resilience {

struct CampaignOptions {
  SystemConfig config = SystemConfig::reduced(8, 8);
  std::uint64_t seed = 1;
  /// Assembly-time (pre-existing) fault probability per tile.
  double initial_fault_probability = 0.0;
  /// Random schedule parameters; ignored when `schedule` is set.
  ScheduleMix mix{};
  std::uint64_t fault_horizon = 4000;  ///< last random event by this cycle
  /// Explicit schedule (regression scenarios) overriding the random one.
  std::optional<FaultSchedule> schedule;
  /// Traffic window (cycles with injection), then drain.
  std::uint64_t run_cycles = 6000;
  std::uint64_t drain_cycles = 200000;
  noc::TrafficPattern pattern = noc::TrafficPattern::UniformRandom;
  double injection_rate = 0.01;  ///< per usable tile per cycle
  /// NoC options; response_timeout == 0 selects a grid-scaled default so
  /// the retry machinery is always armed during a campaign.
  noc::NocOptions noc{};
  PdnDegradationOptions pdn{};
  /// Clock generators; empty = first healthy edge tile.
  std::vector<TileCoord> clock_generators;
  std::uint64_t trajectory_sample_period = 256;
  /// Link-health scrub/retirement policy.  Active only when
  /// noc.mesh.integrity.enabled: the campaign then derives a voltage-aware
  /// BER map from the PDN solve (re-derived after every brownout), layers
  /// scheduled LinkBerDegradation events on top, scrubs the per-link error
  /// counters every scrub_period cycles and retires links that cross the
  /// threshold — all before they fail hard.
  noc::LinkRetirementPolicy link_health{};
  /// PDN<->NoC epoch coupling (wsp::cosim) inside each trial.  0 keeps the
  /// classic static behaviour: one uniform-activity solve up front, BER
  /// re-derived only on brownout events.  >= 1 re-solves the planes every
  /// cosim_epoch_cycles cycles from the NoC's measured per-tile activity
  /// (warm-started from the previous epoch's solution) and re-derives the
  /// voltage-aware BER map, so droop follows traffic and BER follows droop
  /// for the whole trial.  Active only when noc.mesh.integrity.enabled.
  std::uint64_t cosim_epoch_cycles = 0;
  /// Activity -> power scaling for the coupled re-solve.
  cosim::ActivityScale cosim_scale{};
  /// Workload driving each trial's traffic window.  Synthetic (the
  /// default) keeps the classic inline injection loop — `pattern` /
  /// `injection_rate` above, drawn from the trial RNG — bit for bit.  Any
  /// other class routes injection through a wsp::workloads generator
  /// (seeded workload.seed + trial seed, re-derived on every fault event
  /// so collectives re-ring and pipelines re-route around dead tiles).
  workloads::WorkloadSpec workload{};
};

/// Usable-tile count at a point in time.
struct TrajectoryPoint {
  std::uint64_t cycle = 0;
  std::size_t usable_tiles = 0;
  friend bool operator==(const TrajectoryPoint&,
                         const TrajectoryPoint&) = default;
};

/// Per-event outcome: what the fault cost and how long recovery took.
struct EventOutcome {
  FaultNotice notice;
  std::uint64_t applied_cycle = 0;
  std::size_t usable_after = 0;
  std::size_t newly_unusable = 0;  ///< tiles this event removed (with its
                                   ///< clock/PDN collateral)
  /// Cycles until every transaction in flight at the event either
  /// completed or was declared lost — the end-to-end recovery latency.
  std::uint64_t recovery_cycles = 0;
  bool recovered = false;
  int clock_relatched = 0;  ///< tiles that re-latched a surviving clock
  int clock_orphaned = 0;   ///< tiles orphaned from every generator
  int pdn_undervolted = 0;  ///< collateral out-of-regulation tiles
};

struct DegradationReport {
  std::vector<TrajectoryPoint> trajectory;
  std::vector<EventOutcome> events;
  /// Links the health monitor predictively retired during the run.
  std::vector<noc::RetiredLink> retirements;
  noc::NocStats noc_stats;
  std::uint64_t mesh_dropped = 0;  ///< dropped at faults + purged, both nets
  std::size_t initial_usable = 0;
  std::size_t final_usable = 0;
  /// Percentage of ordered usable pairs still routable (directly or
  /// relayed) after the full burst.
  double pair_reachability_pct = 0.0;
  bool single_system_image = false;
  /// True when traffic fully drained (no deadlock, nothing stuck).
  bool drained = false;
  std::uint64_t total_cycles = 0;
  /// Post-burst re-bring-up; nullopt when no healthy edge tile survives
  /// to generate a clock.
  std::optional<arch::BringupReport> rebringup;
};

/// Periodic crash-safe checkpointing for Monte Carlo campaigns
/// (DegradationCampaign::run_trials_checkpointed).
struct CampaignCheckpointOptions {
  std::string path;      ///< snapshot file (a "CAMP" wsp::ckpt frame)
  int every_trials = 1;  ///< snapshot after every N completed trials
  /// Observability/test hook, called after each snapshot has been renamed
  /// into place with the completed-trial count (the kill-and-resume test
  /// SIGKILLs itself from here).
  std::function<void(int completed)> after_checkpoint;
  /// Graceful-shutdown seam for dispatcher-initiated preemption: when true
  /// the checkpointed runner installs a SIGTERM handler for its duration
  /// (restoring the previous disposition on exit) that only sets a flag;
  /// the flag is checked at trial-batch boundaries (granularity
  /// every_trials), where the runner flushes one final CAMP snapshot and
  /// throws CampaignPreempted.  A SIGTERMed worker therefore never loses
  /// completed trials.  SIGKILL remains the hard path — the last on-disk
  /// snapshot still resumes correctly, it just re-does the tail.
  bool flush_on_sigterm = false;
};

/// Thrown by the checkpointed runners when a SIGTERM lands with
/// flush_on_sigterm set: cooperative preemption, not an error.  The final
/// snapshot holding `completed()` trials is already renamed into place when
/// this is thrown, so rerunning the same command line resumes the tail.
class CampaignPreempted : public wsp::Error {
 public:
  explicit CampaignPreempted(int completed)
      : wsp::Error("campaign preempted by SIGTERM after " +
                   std::to_string(completed) +
                   " completed trials (snapshot flushed)"),
        completed_(completed) {}
  int completed() const { return completed_; }

 private:
  int completed_;
};

class DegradationCampaign {
 public:
  explicit DegradationCampaign(const CampaignOptions& options);

  const CampaignOptions& options() const { return options_; }

  /// One seeded trial.  Bit-identical across invocations with equal
  /// options (all randomness flows from one wsp::Rng).
  DegradationReport run() const;

  /// Monte Carlo: `trials` runs seeded seed, seed+1, ...  Independent
  /// trials dispatch concurrently onto the wsp::exec shared pool; the
  /// returned reports are bit-identical for every thread count (each trial
  /// is a pure function of its seed).
  std::vector<DegradationReport> run_trials(int trials) const;

  /// Trials [first, first+count), numbered exactly as run_trials numbers
  /// them (trial t is seeded seed + t), so checkpoint resumes and
  /// multi-process shards reproduce the single-process reports bit for
  /// bit.
  std::vector<DegradationReport> run_trial_range(int first, int count) const;

  /// run_trials with crash-safe resume: completed trials are snapshotted
  /// to ckpt.path every ckpt.every_trials trials (write-temp-then-rename,
  /// so a kill at any instant leaves either the previous snapshot or the
  /// new one).  When ckpt.path already holds a snapshot of *this* campaign
  /// — fingerprint, trial count and cursor all validated — the finished
  /// trials are loaded instead of re-run; a snapshot of a different
  /// campaign throws ckpt::Error.  A killed-and-resumed run therefore
  /// loses at most every_trials-1 trials of work and returns a report
  /// vector bit-identical to an uninterrupted run_trials(trials).
  std::vector<DegradationReport> run_trials_checkpointed(
      int trials, const CampaignCheckpointOptions& ckpt) const;

  /// run_trial_range with the same crash-safe resume: the snapshot records
  /// [first, first+count) out of a total_trials-trial campaign, which is
  /// exactly the shape a multi-process shard writes — each worker
  /// checkpoints (and resumes) its own range independently, and the
  /// partials merge with merge_campaign_reports.
  std::vector<DegradationReport> run_trial_range_checkpointed(
      int first, int count, int total_trials,
      const CampaignCheckpointOptions& ckpt) const;

  /// CRC-32 over the serialised behavioural options (config, schedule/mix,
  /// traffic, NoC, PDN and link-health parameters; the mesh shard count is
  /// excluded — it only tunes parallel grain).  The campaign identity a
  /// checkpoint or shard file must match to be resumed or merged.
  std::uint32_t options_fingerprint() const;

 private:
  CampaignOptions options_;
};

/// DegradationReport (de)serialisation.  Everything the summarize /
/// publish_metrics layers read round-trips exactly.  The optional
/// rebringup is captured as its summary numbers (faulty_tiles,
/// screening_tcks, usable_tiles, single_system_image); the nested plans
/// and maps are derivable by re-running bring-up and are not snapshotted.
void save_report(ckpt::Writer& w, const DegradationReport& report);
DegradationReport load_report(ckpt::Reader& r);

/// One campaign's (partial) trial results on disk: the "CAMP" frame shared
/// by periodic checkpoints (first_trial == 0) and per-shard partials.
struct CampaignReportsFile {
  std::uint32_t fingerprint = 0;  ///< DegradationCampaign::options_fingerprint
  int total_trials = 0;           ///< trials in the whole campaign
  int first_trial = 0;            ///< index of reports.front()
  std::vector<DegradationReport> reports;  ///< consecutive completed trials
};

void save_campaign_reports(const std::string& path,
                           const CampaignReportsFile& file);
CampaignReportsFile load_campaign_reports(const std::string& path);

/// Stitches shard partials back into trial order.  Validates that every
/// shard carries `fingerprint`, that all agree on total_trials, and that
/// the ranges tile [0, total_trials) exactly — a gap, an overlap, a
/// duplicate shard, or a foreign shard throws ckpt::Error{SchemaMismatch}
/// whose message names the offending shard's trial range, so an operator
/// staring at a failed merge of 64 partials knows which file to look at.
/// The merged vector is bit-identical to run_trials(total_trials) on one
/// process.
std::vector<DegradationReport> merge_campaign_reports(
    std::vector<CampaignReportsFile> shards, std::uint32_t fingerprint);

/// Aggregate view over a set of Monte Carlo trials.
struct CampaignSummary {
  int trials = 0;
  double mean_final_usable_fraction = 0.0;  ///< of initially usable tiles
  double mean_recovery_cycles = 0.0;        ///< over recovered events
  double mean_pair_reachability_pct = 0.0;
  double lost_per_issued = 0.0;             ///< lost transactions / issued
  int single_system_image_survived = 0;     ///< trials ending with SSI
  int fully_drained = 0;                    ///< trials with no stuck traffic
};

CampaignSummary summarize(const std::vector<DegradationReport>& reports);

/// Folds trial reports into `registry` under the "campaign." namespace:
/// counters (trials, events, recovered events, retirements, drained /
/// single-system-image trials, aggregated NoC issued/completed/lost/
/// timeouts/retries), histograms (campaign.recovery_cycles over recovered
/// events, campaign.final_usable per trial) and summary gauges.  Reports
/// are folded in vector order, so run_trials output — itself bit-identical
/// for every thread count — produces a bit-identical registry.
void publish_metrics(const std::vector<DegradationReport>& reports,
                     obs::MetricsRegistry& registry);

}  // namespace wsp::resilience
