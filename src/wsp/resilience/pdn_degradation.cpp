#include "wsp/resilience/pdn_degradation.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::resilience {

std::vector<TileCoord> PdnDegradationReport::unusable() const {
  std::vector<TileCoord> out = browned_out;
  out.insert(out.end(), undervolted.begin(), undervolted.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PdnDegradationReport resolve_after_brownouts(
    const SystemConfig& config, const std::vector<TileCoord>& browned_out,
    const PdnDegradationOptions& options) {
  require(options.brownout_load_factor >= 1.0,
          "a browned-out LDO cannot draw less than its nominal load");
  const TileGrid grid = config.grid();

  PdnDegradationReport report;
  report.browned_out = browned_out;
  std::sort(report.browned_out.begin(), report.browned_out.end());
  report.browned_out.erase(
      std::unique(report.browned_out.begin(), report.browned_out.end()),
      report.browned_out.end());
  for (TileCoord t : report.browned_out)
    require(grid.contains(t), "browned-out tile outside the grid");

  pdn::WaferPdn model(config, options.pdn);
  std::vector<double> tile_power(
      grid.tile_count(), config.tile_peak_power_w * options.activity);
  report.baseline = model.solve(tile_power);

  for (TileCoord t : report.browned_out)
    tile_power[grid.index_of(t)] *= options.brownout_load_factor;
  report.degraded = model.solve(tile_power);
  report.min_supply_v = report.degraded.min_supply_v;

  // Collateral damage: tiles regulated at baseline but not any more.  The
  // struck tiles themselves are reported separately.
  grid.for_each([&](TileCoord c) {
    const auto i = grid.index_of(c);
    if (std::binary_search(report.browned_out.begin(),
                           report.browned_out.end(), c))
      return;
    if (report.baseline.tiles[i].in_regulation &&
        !report.degraded.tiles[i].in_regulation)
      report.undervolted.push_back(c);
  });
  return report;
}

}  // namespace wsp::resilience
