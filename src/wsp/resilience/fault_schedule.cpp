#include "wsp/resilience/fault_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"

namespace wsp::resilience {

void FaultSchedule::add(const FaultEvent& event) {
  // upper_bound keeps same-cycle events in insertion order (stable).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.cycle < b.cycle; });
  events_.insert(pos, event);
}

FaultSchedule FaultSchedule::random(const TileGrid& grid,
                                    const ScheduleMix& mix,
                                    std::uint64_t horizon, Rng& rng) {
  require(horizon >= 1, "schedule horizon must be at least one cycle");
  require(mix.tile_deaths < grid.tile_count(),
          "cannot kill every tile of the grid");

  FaultSchedule schedule;
  const auto random_cycle = [&] { return 1 + rng.below(horizon); };
  const auto random_tile = [&] {
    return grid.coord_of(rng.below(grid.tile_count()));
  };

  std::vector<TileCoord> dead;
  for (std::size_t i = 0; i < mix.tile_deaths; ++i) {
    TileCoord t = random_tile();
    while (std::find(dead.begin(), dead.end(), t) != dead.end())
      t = random_tile();
    dead.push_back(t);
    schedule.add({random_cycle(), RuntimeFaultKind::TileDeath, t, {}});
  }
  for (std::size_t i = 0; i < mix.link_failures; ++i) {
    // Redraw until the link actually leaves toward a neighbour.
    TileCoord t = random_tile();
    auto d = static_cast<Direction>(rng.below(4));
    while (!grid.neighbor(t, d)) {
      t = random_tile();
      d = static_cast<Direction>(rng.below(4));
    }
    schedule.add({random_cycle(), RuntimeFaultKind::LinkFailure, t, d});
  }
  for (std::size_t i = 0; i < mix.ldo_brownouts; ++i)
    schedule.add(
        {random_cycle(), RuntimeFaultKind::LdoBrownout, random_tile(), {}});
  for (std::size_t i = 0; i < mix.clock_gen_losses; ++i) {
    TileCoord t = random_tile();
    while (!grid.is_edge(t)) t = random_tile();
    schedule.add({random_cycle(), RuntimeFaultKind::ClockGenLoss, t, {}});
  }
  for (std::size_t i = 0; i < mix.packet_corruptions; ++i)
    schedule.add({random_cycle(), RuntimeFaultKind::PacketCorruption,
                  random_tile(), {}});
  for (std::size_t i = 0; i < mix.link_ber_degradations; ++i) {
    TileCoord t = random_tile();
    auto d = static_cast<Direction>(rng.below(4));
    while (!grid.neighbor(t, d)) {
      t = random_tile();
      d = static_cast<Direction>(rng.below(4));
    }
    // BER log-uniform in [1e-5, 1e-2]: from barely measurable to a link
    // that corrupts most packets (100 bits/packet).
    const double ber = std::pow(10.0, -(2.0 + 3.0 * rng.uniform()));
    FaultEvent e{random_cycle(), RuntimeFaultKind::LinkBerDegradation, t, d};
    e.magnitude = ber;
    schedule.add(e);
  }
  return schedule;
}

// --- checkpointing ----------------------------------------------------------

void save_fault_event(ckpt::Writer& w, const FaultEvent& e) {
  w.u64(e.cycle);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.i32(e.tile.x);
  w.i32(e.tile.y);
  w.u8(static_cast<std::uint8_t>(e.link));
  w.f64(e.magnitude);
}

FaultEvent load_fault_event(ckpt::Reader& r) {
  FaultEvent e;
  e.cycle = r.u64();
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(RuntimeFaultKind::LinkBerDegradation))
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "fault event kind out of range");
  e.kind = static_cast<RuntimeFaultKind>(kind);
  e.tile.x = r.i32();
  e.tile.y = r.i32();
  const std::uint8_t link = r.u8();
  if (link > 3)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "fault event link direction out of range");
  e.link = static_cast<Direction>(link);
  e.magnitude = r.f64();
  return e;
}

// Per-event payload: u64 + u8 + 2*i32 + u8 + f64.
constexpr std::size_t kEventBytes = 26;

void FaultSchedule::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("FSCH"));
  w.u64(events_.size());
  for (const FaultEvent& e : events_) save_fault_event(w, e);
}

void FaultSchedule::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("FSCH"), "FaultSchedule");
  const std::size_t n = r.length(kEventBytes);
  std::vector<FaultEvent> events(n);
  std::uint64_t prev = 0;
  for (FaultEvent& e : events) {
    e = load_fault_event(r);
    if (e.cycle < prev)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "schedule events not sorted by cycle");
    prev = e.cycle;
  }
  events_ = std::move(events);
}

}  // namespace wsp::resilience
