#include "wsp/resilience/fault_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::resilience {

void FaultSchedule::add(const FaultEvent& event) {
  // upper_bound keeps same-cycle events in insertion order (stable).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.cycle < b.cycle; });
  events_.insert(pos, event);
}

FaultSchedule FaultSchedule::random(const TileGrid& grid,
                                    const ScheduleMix& mix,
                                    std::uint64_t horizon, Rng& rng) {
  require(horizon >= 1, "schedule horizon must be at least one cycle");
  require(mix.tile_deaths < grid.tile_count(),
          "cannot kill every tile of the grid");

  FaultSchedule schedule;
  const auto random_cycle = [&] { return 1 + rng.below(horizon); };
  const auto random_tile = [&] {
    return grid.coord_of(rng.below(grid.tile_count()));
  };

  std::vector<TileCoord> dead;
  for (std::size_t i = 0; i < mix.tile_deaths; ++i) {
    TileCoord t = random_tile();
    while (std::find(dead.begin(), dead.end(), t) != dead.end())
      t = random_tile();
    dead.push_back(t);
    schedule.add({random_cycle(), RuntimeFaultKind::TileDeath, t, {}});
  }
  for (std::size_t i = 0; i < mix.link_failures; ++i) {
    // Redraw until the link actually leaves toward a neighbour.
    TileCoord t = random_tile();
    auto d = static_cast<Direction>(rng.below(4));
    while (!grid.neighbor(t, d)) {
      t = random_tile();
      d = static_cast<Direction>(rng.below(4));
    }
    schedule.add({random_cycle(), RuntimeFaultKind::LinkFailure, t, d});
  }
  for (std::size_t i = 0; i < mix.ldo_brownouts; ++i)
    schedule.add(
        {random_cycle(), RuntimeFaultKind::LdoBrownout, random_tile(), {}});
  for (std::size_t i = 0; i < mix.clock_gen_losses; ++i) {
    TileCoord t = random_tile();
    while (!grid.is_edge(t)) t = random_tile();
    schedule.add({random_cycle(), RuntimeFaultKind::ClockGenLoss, t, {}});
  }
  for (std::size_t i = 0; i < mix.packet_corruptions; ++i)
    schedule.add({random_cycle(), RuntimeFaultKind::PacketCorruption,
                  random_tile(), {}});
  for (std::size_t i = 0; i < mix.link_ber_degradations; ++i) {
    TileCoord t = random_tile();
    auto d = static_cast<Direction>(rng.below(4));
    while (!grid.neighbor(t, d)) {
      t = random_tile();
      d = static_cast<Direction>(rng.below(4));
    }
    // BER log-uniform in [1e-5, 1e-2]: from barely measurable to a link
    // that corrupts most packets (100 bits/packet).
    const double ber = std::pow(10.0, -(2.0 + 3.0 * rng.uniform()));
    FaultEvent e{random_cycle(), RuntimeFaultKind::LinkBerDegradation, t, d};
    e.magnitude = ber;
    schedule.add(e);
  }
  return schedule;
}

}  // namespace wsp::resilience
