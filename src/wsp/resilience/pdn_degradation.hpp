// PDN degradation: re-solving the droop profile after LDO brownouts.
//
// Sec. III sizes the edge-delivery PDN so every tile's LDO stays in its
// guaranteed [1.0 V, 1.2 V] output band.  A browned-out LDO breaks that
// contract two ways: the struck tile itself loses regulation, and — because
// a failed pass device leaks extra plane current — the surrounding droop
// deepens, which can push *neighbouring* tiles' inputs below the voltage
// the LDO can regulate from.  This module re-runs the nodal plane solve
// with the browned-out loads and reports every tile pushed out of the
// regulated band, so the degradation layer can mark them unusable.
#pragma once

#include <vector>

#include "wsp/common/config.hpp"
#include "wsp/common/geometry.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace wsp::resilience {

struct PdnDegradationOptions {
  pdn::WaferPdnOptions pdn{};
  /// Activity factor for the baseline and degraded solves (1.0 = peak).
  double activity = 1.0;
  /// A browned-out LDO's pass device leaks: the struck tile draws this
  /// multiple of its nominal load from the plane.
  double brownout_load_factor = 1.5;
};

struct PdnDegradationReport {
  pdn::PdnReport baseline;  ///< solve before the brownouts
  pdn::PdnReport degraded;  ///< solve with browned-out loads applied
  /// The struck tiles themselves (always unusable).
  std::vector<TileCoord> browned_out;
  /// Tiles that were in regulation at baseline but fell out of the
  /// regulated band after the re-solve (collateral undervoltage).
  std::vector<TileCoord> undervolted;
  /// Worst plane voltage after degradation.
  double min_supply_v = 0.0;

  /// All tiles the PDN layer says must be marked unusable.
  std::vector<TileCoord> unusable() const;
};

/// Re-solves the wafer PDN with `browned_out` LDOs failed.  Deterministic;
/// tiles listed twice are only counted once.
PdnDegradationReport resolve_after_brownouts(
    const SystemConfig& config, const std::vector<TileCoord>& browned_out,
    const PdnDegradationOptions& options = {});

}  // namespace wsp::resilience
