// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (fault-map sampling, Monte Carlo
// bonding yield, synthetic traffic) draws from `wsp::Rng`, a xoshiro256**
// generator seeded explicitly by the caller.  Two runs with the same seed
// produce bit-identical results on every platform, which makes all the
// paper-reproduction experiments replayable.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "wsp/common/error.hpp"

namespace wsp {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialises the state from a single 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// Precondition: bound >= 1 — the range [0, 0) is empty, so no value can
  /// be drawn from it.  The old `return 0` masked caller bugs by silently
  /// producing a value outside the (empty) requested range; it now throws
  /// wsp::Error, and `(0 - bound) % bound` can no longer divide by zero.
  std::uint64_t below(std::uint64_t bound) {
    require(bound != 0, "Rng::below(0): empty range [0, 0)");
    // 128-bit multiply-shift; rejection keeps the distribution exact.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) { return uniform() < p; }

  /// The raw 256-bit generator state, for checkpointing.  Restoring the
  /// four words via set_state() resumes the stream mid-sequence, which is
  /// what makes snapshot-at-cycle-k bit-identical to straight-through.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace wsp
