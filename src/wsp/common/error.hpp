// Error handling for the waferscale library.
//
// Precondition violations and configuration errors throw `wsp::Error`; the
// simulators themselves are exception-free on their hot paths.
#pragma once

#include <stdexcept>
#include <string>

namespace wsp {

/// Base exception for all library errors (bad configuration, violated
/// preconditions, infeasible design requests).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws `wsp::Error` with `message` when `condition` is false.
/// Used to validate public-API preconditions.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace wsp
