#include "wsp/common/config.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp {

SystemConfig SystemConfig::paper_prototype() { return SystemConfig{}; }

SystemConfig SystemConfig::reduced(int width, int height) {
  SystemConfig cfg;
  cfg.array_width = width;
  cfg.array_height = height;
  // One JTAG chain per row, capped at the prototype's 32.
  cfg.jtag_chains = std::min(cfg.jtag_chains, height);
  cfg.validate();
  return cfg;
}

void SystemConfig::validate() const {
  require(array_width > 0 && array_height > 0,
          "array dimensions must be positive");
  require(cores_per_tile > 0, "cores_per_tile must be positive");
  require(shared_banks_per_tile <= banks_per_memory_chiplet,
          "shared banks cannot exceed banks per memory chiplet");
  require(nominal_freq_hz > 0 && nominal_freq_hz <= pll_output_max_hz,
          "nominal frequency must be within PLL range");
  require(pll_input_min_hz < pll_input_max_hz, "PLL input range is empty");
  require(edge_supply_voltage_v > nominal_voltage_v,
          "edge supply must exceed nominal logic voltage");
  require(min_center_supply_v > regulated_max_v - 0.3,
          "center supply must leave LDO headroom");
  require(pillar_bond_yield > 0.0 && pillar_bond_yield <= 1.0,
          "pillar bond yield must be a probability");
  require(pillars_per_pad >= 1, "at least one pillar per pad");
  require(packet_bits <= link_width_bits_per_side,
          "packet cannot be wider than the link escape width");
  require(num_networks >= 1 && num_networks <= 2,
          "this design supports one or two DoR networks");
  require(payload_bits > 0 && payload_bits <= packet_bits,
          "payload must fit inside the packet");
  require(signal_routing_layers >= 1 && signal_routing_layers <= 2,
          "substrate provides at most two signal routing layers");
  require(jtag_chains >= 1 && jtag_chains <= array_height,
          "JTAG chains are organised per tile row");
  require(reticle_tiles_x > 0 && reticle_tiles_y > 0,
          "reticle tile counts must be positive");
}

double SystemConfig::total_area_m2() const {
  // The populated array plus an edge ring that carries the fan-out wiring
  // and connector pads (built from unpopulated edge reticles, Sec. VIII).
  const double w = geometry.tile_pitch_x_m() * array_width;
  const double h = geometry.tile_pitch_y_m() * array_height;
  const double m = edge_io_margin_m;
  return (w + 2 * m) * (h + 2 * m);
}

}  // namespace wsp
