// Physical unit conventions used throughout the library.
//
// All quantities are stored in SI base units as `double` unless the name
// says otherwise:  volts (V), amperes (A), watts (W), ohms (Ohm), farads (F),
// henries (H), seconds (s), hertz (Hz), metres (m).  Named multipliers below
// make call sites self-documenting: `3.15 * units::mm`, `350 * units::mW`.
//
// We deliberately use plain doubles rather than a strong-unit type system:
// the solver inner loops (PDN nodal solve, NoC cycle loop) are performance
// sensitive and the library's public API is narrow enough that the naming
// convention (`supply_voltage_v`, `tile_pitch_m`) carries the unit.
#pragma once

namespace wsp::units {

// --- length ---
inline constexpr double m = 1.0;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// --- area ---
inline constexpr double mm2 = 1e-6;
inline constexpr double um2 = 1e-12;

// --- electrical ---
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double ohm = 1.0;
inline constexpr double mohm = 1e-3;
inline constexpr double F = 1.0;
inline constexpr double nF = 1e-9;
inline constexpr double pF = 1e-12;
inline constexpr double H = 1.0;
inline constexpr double nH = 1e-9;

// --- time / frequency ---
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// --- information ---
inline constexpr double bit = 1.0;
inline constexpr double byte = 8.0;
inline constexpr double KiB = 8.0 * 1024.0;
inline constexpr double MiB = 8.0 * 1024.0 * 1024.0;

// --- energy ---
inline constexpr double J = 1.0;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;

}  // namespace wsp::units
