#include "wsp/common/geometry.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp {

const char* to_string(Direction d) {
  switch (d) {
    case Direction::North: return "N";
    case Direction::East:  return "E";
    case Direction::South: return "S";
    case Direction::West:  return "W";
  }
  return "?";
}

std::string to_string(const TileCoord& c) {
  return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}

TileGrid::TileGrid(int width, int height) : width_(width), height_(height) {
  require(width > 0 && height > 0, "TileGrid dimensions must be positive");
}

std::vector<TileCoord> TileGrid::neighbors(TileCoord c) const {
  std::vector<TileCoord> out;
  out.reserve(4);
  for (Direction d : kAllDirections) {
    if (auto n = neighbor(c, d)) out.push_back(*n);
  }
  return out;
}

int TileGrid::distance_to_edge(TileCoord c) const {
  require(contains(c), "distance_to_edge: coordinate out of bounds");
  return std::min(std::min(c.x, width_ - 1 - c.x),
                  std::min(c.y, height_ - 1 - c.y));
}

void TileGrid::for_each(const std::function<void(TileCoord)>& fn) const {
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x) fn({x, y});
}

}  // namespace wsp
