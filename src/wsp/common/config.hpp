// System configuration: every architecture/technology parameter of the
// waferscale processor, plus the derived quantities reported in Table I of
// the paper.
//
// Design rule of this library: Table-I numbers (bandwidths, currents, areas,
// core counts) are never hard-coded downstream — they are *derived* here
// from the primitive parameters, so the Table-I reproduction bench is a real
// consistency check of the model, not an echo of constants.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wsp/common/geometry.hpp"
#include "wsp/common/units.hpp"

namespace wsp {

/// Complete parameterisation of a chiplet-based waferscale processor in the
/// style of the DAC'21 prototype.  Defaults correspond to the paper's
/// 2048-chiplet system; `paper_prototype()` returns exactly that, and
/// `reduced()` scales the array down for fast simulation (the software
/// analogue of the paper's reduced-size FPGA emulation).
struct SystemConfig {
  // ---- Tile array -------------------------------------------------------
  int array_width = 32;   ///< tiles per row (32 in the prototype)
  int array_height = 32;  ///< tiles per column
  int cores_per_tile = 14;
  int chiplets_per_tile = 2;  ///< one compute + one memory chiplet

  // ---- Memory system ----------------------------------------------------
  std::size_t private_mem_per_core_bytes = 64 * 1024;
  int banks_per_memory_chiplet = 5;    ///< five 128 KB SRAM banks
  int shared_banks_per_tile = 4;       ///< banks in the global address space
  std::size_t bank_bytes = 128 * 1024;
  int bank_port_bytes = 4;             ///< 32-bit bank data port

  // ---- Clocking ---------------------------------------------------------
  double nominal_freq_hz = 300 * units::MHz;
  double max_forwarded_clock_hz = 350 * units::MHz;
  double pll_input_min_hz = 10 * units::MHz;
  double pll_input_max_hz = 133 * units::MHz;
  double pll_output_max_hz = 400 * units::MHz;
  int clock_select_toggle_count = 16;  ///< toggles before auto-selection

  // ---- Power delivery ---------------------------------------------------
  double nominal_voltage_v = 1.1;
  double regulated_min_v = 1.0;   ///< guaranteed LDO output band (low)
  double regulated_max_v = 1.2;   ///< guaranteed LDO output band (high)
  double ff_corner_voltage_v = 1.21;  ///< fast-fast corner logic supply
  double edge_supply_voltage_v = 2.5; ///< supply at the wafer edge
  double min_center_supply_v = 1.4;   ///< droop floor the LDO must track
  double tile_peak_power_w = 350 * units::mW;
  double decap_per_tile_f = 20 * units::nF;
  double max_load_step_a = 200 * units::mA;  ///< worst-case demand swing
  double decap_area_fraction = 0.35;  ///< ~35 % of tile area is decap
  int substrate_metal_layers = 4;     ///< 2 power planes + 2 signal layers
  double substrate_metal_thickness_m = 2 * units::um;  ///< max Si-IF thickness
  double copper_sheet_resistance_ohm_per_sq = 0.0086;  ///< 2 um Cu plane

  // ---- I/O architecture -------------------------------------------------
  int ios_per_compute_chiplet = 2020;
  int ios_per_memory_chiplet = 1250;
  double io_pitch_m = 10 * units::um;       ///< Cu-pillar pitch
  double wiring_pitch_m = 5 * units::um;    ///< interconnect wiring pitch
  double io_cell_area_m2 = 150 * units::um2;
  double io_energy_per_bit_j = 0.063 * units::pJ;
  double io_signaling_rate_hz = 1 * units::GHz;
  double max_link_length_m = 500 * units::um;
  int signal_routing_layers = 2;            ///< two layers of signalling
  double pillar_bond_yield = 0.9999;        ///< >99.99 % per pillar
  int pillars_per_pad = 2;                  ///< dual-pillar redundancy

  // ---- Waferscale network ----------------------------------------------
  int link_width_bits_per_side = 400;  ///< escape width per tile side
  int packet_bits = 100;               ///< full packet width
  int payload_bits = 64;               ///< data payload per packet
  int num_networks = 2;                ///< X-Y and Y-X DoR networks
  int buses_per_network_per_side = 2;  ///< ingress + egress

  // ---- Physical geometry -------------------------------------------------
  PhysicalGeometry geometry{
      .compute_chiplet_width_m = 3.15 * units::mm,
      .compute_chiplet_height_m = 2.4 * units::mm,
      .memory_chiplet_width_m = 3.15 * units::mm,
      .memory_chiplet_height_m = 1.1 * units::mm,
      .inter_chiplet_gap_m = 100 * units::um,
  };
  double edge_io_margin_m = 6.2 * units::mm;  ///< fan-out ring to connectors

  // ---- Test infrastructure ----------------------------------------------
  double jtag_tck_hz = 10 * units::MHz;  ///< max TCK with split chains
  int jtag_chains = 32;                  ///< one chain per tile row

  // ---- Substrate reticle plan -------------------------------------------
  int reticle_tiles_x = 12;  ///< tiles per reticle, x
  int reticle_tiles_y = 6;   ///< tiles per reticle, y
  double intra_reticle_wire_width_m = 2 * units::um;
  double intra_reticle_wire_space_m = 3 * units::um;
  double stitch_wire_width_m = 3 * units::um;  ///< fat wires at reticle edge
  double stitch_wire_space_m = 2 * units::um;

  // ---- Factories ---------------------------------------------------------
  /// The full 2048-chiplet, 14336-core prototype of the paper.
  static SystemConfig paper_prototype();
  /// A WxH-tile system with otherwise identical parameters (the software
  /// analogue of the paper's reduced-size FPGA emulation platform).
  static SystemConfig reduced(int width, int height);

  /// Throws wsp::Error when a parameter combination is inconsistent.
  void validate() const;

  TileGrid grid() const { return TileGrid(array_width, array_height); }

  // ---- Derived quantities (Table I) --------------------------------------
  int total_tiles() const { return array_width * array_height; }
  int total_chiplets() const { return total_tiles() * chiplets_per_tile; }
  int total_cores() const { return total_tiles() * cores_per_tile; }

  /// Peak compute throughput in ops/s (1 op per core per cycle).
  double compute_throughput_ops() const {
    return static_cast<double>(total_cores()) * nominal_freq_hz;
  }

  /// Globally shared memory capacity in bytes (shared banks only).
  std::size_t total_shared_memory_bytes() const {
    return static_cast<std::size_t>(total_tiles()) *
           static_cast<std::size_t>(shared_banks_per_tile) * bank_bytes;
  }

  /// Aggregate shared-memory bandwidth in bytes/s: every bank on every
  /// memory chiplet can be accessed in parallel, one 32-bit word per cycle.
  double shared_memory_bandwidth_bytes_per_s() const {
    return static_cast<double>(total_tiles()) * banks_per_memory_chiplet *
           bank_port_bytes * nominal_freq_hz;
  }

  /// Aggregate waferscale-network payload bandwidth in bytes/s: each tile
  /// can inject and eject one packet per network per cycle (2 networks x
  /// ingress+egress x 64-bit payload = 256 payload bits per tile per cycle).
  double network_bandwidth_bytes_per_s() const {
    return static_cast<double>(total_tiles()) * num_networks *
           buses_per_network_per_side * (payload_bits / 8.0) * nominal_freq_hz;
  }

  /// Peak current drawn by all tiles at the fast-fast corner, in amperes.
  /// The paper quotes "about 290 A".
  double total_peak_current_a() const {
    return static_cast<double>(total_tiles()) * tile_peak_power_w /
           ff_corner_voltage_v;
  }

  /// Peak power entering the wafer edge at the edge supply voltage, in W
  /// (the "Total Peak Power 725 W" row of Table I: 290 A x 2.5 V).
  double total_peak_power_w() const {
    return total_peak_current_a() * edge_supply_voltage_v;
  }

  /// Area of the populated tile array (tile pitch x array size), m^2.
  double array_area_m2() const {
    return geometry.tile_pitch_x_m() * array_width *
           geometry.tile_pitch_y_m() * array_height;
  }

  /// Total substrate area including the edge fan-out / connector ring, m^2
  /// ("Total Area (w/ edge I/Os) 15100 mm^2").
  double total_area_m2() const;

  /// Active silicon area (sum of all chiplet areas), m^2.
  double active_silicon_area_m2() const {
    return geometry.tile_active_area_m2() * total_tiles();
  }

  /// Total number of fine-pitch inter-chiplet I/Os across the system.
  std::int64_t total_inter_chip_ios() const {
    return static_cast<std::int64_t>(total_tiles()) *
           (ios_per_compute_chiplet + ios_per_memory_chiplet);
  }

  /// Per-tile decoupling capacitance the LDO sees, already in the struct;
  /// this returns the aggregate across the wafer (for PDN transient study).
  double total_decap_f() const { return decap_per_tile_f * total_tiles(); }
};

}  // namespace wsp
