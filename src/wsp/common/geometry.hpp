// Tile-grid geometry: coordinates, directions, and physical placement of
// tiles on the waferscale substrate.
//
// The waferscale system is a WxH array of tiles (32x32 in the full
// prototype).  Each tile holds one compute chiplet and one memory chiplet;
// the tile is the unit of clock forwarding, NoC routing, fault mapping and
// power analysis, so this header is the vocabulary shared by every module.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace wsp {

/// The four mesh directions.  Order matters: it is the priority order used
/// by the clock-forwarding selector and the index into per-port arrays.
enum class Direction : std::uint8_t { North = 0, East = 1, South = 2, West = 3 };

inline constexpr std::array<Direction, 4> kAllDirections = {
    Direction::North, Direction::East, Direction::South, Direction::West};

/// Direction pointing the opposite way (North<->South, East<->West).
constexpr Direction opposite(Direction d) {
  switch (d) {
    case Direction::North: return Direction::South;
    case Direction::East:  return Direction::West;
    case Direction::South: return Direction::North;
    case Direction::West:  return Direction::East;
  }
  return Direction::North;  // unreachable
}

const char* to_string(Direction d);

/// Coordinate of a tile in the array.  `x` grows eastward (column index),
/// `y` grows northward (row index).  (0,0) is the south-west corner.
struct TileCoord {
  int x = 0;
  int y = 0;

  friend constexpr bool operator==(const TileCoord&, const TileCoord&) = default;
  friend constexpr auto operator<=>(const TileCoord&, const TileCoord&) = default;
};

/// Coordinate displaced one step in direction `d`.
constexpr TileCoord step(TileCoord c, Direction d) {
  switch (d) {
    case Direction::North: return {c.x, c.y + 1};
    case Direction::East:  return {c.x + 1, c.y};
    case Direction::South: return {c.x, c.y - 1};
    case Direction::West:  return {c.x - 1, c.y};
  }
  return c;  // unreachable
}

std::string to_string(const TileCoord& c);

/// Rectangular tile array.  Provides bounds checking, linearisation and
/// neighbour enumeration; every module that iterates over tiles does it
/// through this class.
class TileGrid {
 public:
  TileGrid(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t tile_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  bool contains(TileCoord c) const {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

  /// Linear index for vector-of-tiles storage (row-major, y outer).
  std::size_t index_of(TileCoord c) const {
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(c.x);
  }

  TileCoord coord_of(std::size_t index) const {
    return {static_cast<int>(index % static_cast<std::size_t>(width_)),
            static_cast<int>(index / static_cast<std::size_t>(width_))};
  }

  /// Neighbour of `c` in direction `d`, or nullopt at the array boundary.
  std::optional<TileCoord> neighbor(TileCoord c, Direction d) const {
    const TileCoord n = step(c, d);
    if (!contains(n)) return std::nullopt;
    return n;
  }

  /// All in-bounds neighbours of `c`, in kAllDirections order.
  std::vector<TileCoord> neighbors(TileCoord c) const;

  /// True if the tile sits on the array boundary.  Edge tiles are special:
  /// they receive the external power at full voltage, may host the clock
  /// generator, and are where JTAG chains enter the wafer.
  bool is_edge(TileCoord c) const {
    return c.x == 0 || c.y == 0 || c.x == width_ - 1 || c.y == height_ - 1;
  }

  /// Manhattan distance in tiles from `c` to the nearest array edge
  /// (0 for edge tiles).  Used by the PDN droop model.
  int distance_to_edge(TileCoord c) const;

  /// Invokes `fn` on every tile coordinate in linear-index order.
  void for_each(const std::function<void(TileCoord)>& fn) const;

 private:
  int width_;
  int height_;
};

/// Physical dimensions of the chiplets and the assembled wafer, straight
/// from the paper (Table I and Section II).
struct PhysicalGeometry {
  double compute_chiplet_width_m;   ///< 3.15 mm
  double compute_chiplet_height_m;  ///< 2.4 mm
  double memory_chiplet_width_m;    ///< 3.15 mm
  double memory_chiplet_height_m;   ///< 1.1 mm
  double inter_chiplet_gap_m;       ///< ~100 um chiplet spacing on the Si-IF

  /// Footprint (width) of one tile including spacing.
  double tile_pitch_x_m() const {
    return compute_chiplet_width_m + inter_chiplet_gap_m;
  }
  /// Footprint (height) of one tile: compute + memory chiplet stacked
  /// vertically plus two inter-chiplet gaps.
  double tile_pitch_y_m() const {
    return compute_chiplet_height_m + memory_chiplet_height_m +
           2.0 * inter_chiplet_gap_m;
  }
  /// Active silicon area of one tile (both chiplets).
  double tile_active_area_m2() const {
    return compute_chiplet_width_m * compute_chiplet_height_m +
           memory_chiplet_width_m * memory_chiplet_height_m;
  }
};

}  // namespace wsp

// Hash support so TileCoord can key unordered containers.
template <>
struct std::hash<wsp::TileCoord> {
  std::size_t operator()(const wsp::TileCoord& c) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 32) |
        static_cast<std::uint32_t>(c.y));
  }
};
