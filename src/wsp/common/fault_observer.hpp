// Runtime-fault notification: the observer seam between the injection
// layer (wsp::resilience) and the subsystems that must react to faults
// appearing *during operation* (NoC replan, clock re-selection, PDN
// re-solve).
//
// The assembly-time story samples a FaultMap once and derives everything
// from it; the runtime story mutates that map while traffic is in flight.
// Reactive subsystems subscribe to a FaultBus and receive a FaultNotice
// for every applied event, together with the already-updated fault state,
// so they can invalidate caches and replan without polling.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "wsp/common/geometry.hpp"

namespace wsp {

class FaultMap;
class LinkFaultSet;

/// Kinds of fault that can strike a live wafer (Secs. IV-VII failure
/// modes, extended from assembly-time to runtime).
enum class RuntimeFaultKind : std::uint8_t {
  TileDeath = 0,        ///< whole tile (both chiplets) stops responding
  LinkFailure = 1,      ///< one directed inter-tile link (stuck async FIFO)
  LdoBrownout = 2,      ///< tile's LDO loses regulation under a load step
  ClockGenLoss = 3,     ///< an edge clock-generator tile stops toggling
  PacketCorruption = 4, ///< transient: one in-flight packet is corrupted
  LinkRetirement = 5,   ///< health monitor retired an error-prone link
  LinkBerDegradation = 6, ///< one link's bit-error rate jumps (marginal eye)
};

inline const char* to_string(RuntimeFaultKind k) {
  switch (k) {
    case RuntimeFaultKind::TileDeath: return "TileDeath";
    case RuntimeFaultKind::LinkFailure: return "LinkFailure";
    case RuntimeFaultKind::LdoBrownout: return "LdoBrownout";
    case RuntimeFaultKind::ClockGenLoss: return "ClockGenLoss";
    case RuntimeFaultKind::PacketCorruption: return "PacketCorruption";
    case RuntimeFaultKind::LinkRetirement: return "LinkRetirement";
    case RuntimeFaultKind::LinkBerDegradation: return "LinkBerDegradation";
  }
  return "?";
}

/// One applied fault event, as delivered to observers.
struct FaultNotice {
  RuntimeFaultKind kind = RuntimeFaultKind::TileDeath;
  TileCoord tile;                 ///< struck tile (or link source)
  std::optional<Direction> link;  ///< outgoing direction, link events only
  std::uint64_t cycle = 0;        ///< simulation cycle the fault appeared
  double magnitude = 0.0;         ///< new BER, LinkBerDegradation only
};

/// Subscriber interface.  `faults` and `links` are the *post-event* state:
/// the mutation has already been applied when observers run.
class FaultObserver {
 public:
  virtual ~FaultObserver() = default;
  virtual void on_fault(const FaultNotice& notice, const FaultMap& faults,
                        const LinkFaultSet& links) = 0;
};

/// Minimal synchronous publish/subscribe fan-out.  Observers are notified
/// in subscription order (deterministic); the bus does not own them.
class FaultBus {
 public:
  void subscribe(FaultObserver* observer) {
    if (observer && std::find(observers_.begin(), observers_.end(),
                              observer) == observers_.end())
      observers_.push_back(observer);
  }

  void unsubscribe(FaultObserver* observer) {
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), observer),
        observers_.end());
  }

  std::size_t observer_count() const { return observers_.size(); }

  void publish(const FaultNotice& notice, const FaultMap& faults,
               const LinkFaultSet& links) const {
    for (FaultObserver* o : observers_) o->on_fault(notice, faults, links);
  }

 private:
  std::vector<FaultObserver*> observers_;
};

}  // namespace wsp
