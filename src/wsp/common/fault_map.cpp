#include "wsp/common/fault_map.hpp"

#include <algorithm>
#include <cassert>

#include "wsp/common/error.hpp"

namespace wsp {

FaultMap::FaultMap(const TileGrid& grid)
    : grid_(grid), faulty_(grid.tile_count(), 0) {}

void FaultMap::set_faulty(TileCoord c, bool faulty) {
  require(grid_.contains(c), "set_faulty: coordinate out of bounds");
  char& slot = faulty_[grid_.index_of(c)];
  if (slot == static_cast<char>(faulty)) return;
  slot = static_cast<char>(faulty);
  if (faulty)
    ++fault_count_;
  else
    --fault_count_;
  assert(fault_count_ == static_cast<std::size_t>(std::count(
                             faulty_.begin(), faulty_.end(), char{1})));
}

std::vector<TileCoord> FaultMap::faulty_tiles() const {
  std::vector<TileCoord> out;
  out.reserve(fault_count_);
  for (std::size_t i = 0; i < faulty_.size(); ++i)
    if (faulty_[i]) out.push_back(grid_.coord_of(i));
  return out;
}

std::vector<TileCoord> FaultMap::healthy_tiles() const {
  std::vector<TileCoord> out;
  out.reserve(healthy_count());
  for (std::size_t i = 0; i < faulty_.size(); ++i)
    if (!faulty_[i]) out.push_back(grid_.coord_of(i));
  return out;
}

bool FaultMap::all_neighbors_faulty(TileCoord c) const {
  for (TileCoord n : grid_.neighbors(c))
    if (is_healthy(n)) return false;
  return true;
}

FaultMap FaultMap::random_with_count(const TileGrid& grid, std::size_t n,
                                     Rng& rng) {
  require(n <= grid.tile_count(), "more faults requested than tiles");
  FaultMap map(grid);
  // Floyd's algorithm would also work; with n << tiles, rejection is fine
  // and keeps the draw order (and thus reproducibility) simple.
  while (map.fault_count() < n) {
    const auto idx = rng.below(grid.tile_count());
    map.set_faulty(grid.coord_of(idx), true);
  }
  return map;
}

FaultMap FaultMap::random_with_probability(const TileGrid& grid, double p,
                                           Rng& rng) {
  require(p >= 0.0 && p <= 1.0, "fault probability must be in [0,1]");
  FaultMap map(grid);
  grid.for_each([&](TileCoord c) {
    if (rng.bernoulli(p)) map.set_faulty(c, true);
  });
  return map;
}

void LinkFaultSet::set_failed(TileCoord from, Direction d, bool failed) {
  require(grid_.contains(from), "set_failed: coordinate out of bounds");
  require(!failed_.empty(), "LinkFaultSet was default-constructed");
  char& slot = failed_[index_of(from, d)];
  if (slot == static_cast<char>(failed)) return;
  slot = static_cast<char>(failed);
  if (failed)
    ++failed_count_;
  else
    --failed_count_;
}

std::vector<std::pair<TileCoord, Direction>> LinkFaultSet::failed_links()
    const {
  std::vector<std::pair<TileCoord, Direction>> out;
  out.reserve(failed_count_);
  for (std::size_t i = 0; i < failed_.size(); ++i)
    if (failed_[i])
      out.emplace_back(grid_.coord_of(i / 4),
                       static_cast<Direction>(i % 4));
  return out;
}

}  // namespace wsp
