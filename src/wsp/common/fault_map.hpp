// Fault maps: which tiles of the assembled wafer are faulty.
//
// The paper's resiliency story (Sections IV-VII) revolves around the fault
// map: after assembly, faulty tiles are identified by the JTAG test flow and
// recorded; the clock-forwarding configuration and the kernel's network
// selection are then derived from it.  This class is that record, plus
// samplers for the randomly generated fault maps used by the Monte Carlo
// studies of Figures 4 and 6.
#pragma once

#include <cstddef>
#include <vector>

#include "wsp/common/geometry.hpp"
#include "wsp/common/rng.hpp"

namespace wsp {

/// Boolean per-tile fault state over a TileGrid.
class FaultMap {
 public:
  /// All tiles healthy.
  explicit FaultMap(const TileGrid& grid);

  const TileGrid& grid() const { return grid_; }

  bool is_faulty(TileCoord c) const { return faulty_[grid_.index_of(c)]; }
  bool is_healthy(TileCoord c) const { return !is_faulty(c); }

  void set_faulty(TileCoord c, bool faulty = true);

  std::size_t fault_count() const { return fault_count_; }
  std::size_t healthy_count() const { return grid_.tile_count() - fault_count_; }

  /// Coordinates of all faulty tiles, in linear-index order.
  std::vector<TileCoord> faulty_tiles() const;
  /// Coordinates of all healthy tiles, in linear-index order.
  std::vector<TileCoord> healthy_tiles() const;

  /// True when every in-bounds neighbour of `c` is faulty — the paper's
  /// condition under which a tile is unreachable by both the forwarded
  /// clock and the mesh network (Fig. 4's yellow tile).
  bool all_neighbors_faulty(TileCoord c) const;

  /// Samples a fault map with exactly `n` distinct faulty tiles chosen
  /// uniformly at random — the fault model behind Figs. 4 and 6.
  static FaultMap random_with_count(const TileGrid& grid, std::size_t n,
                                    Rng& rng);

  /// Samples a fault map where each tile fails independently with
  /// probability `p` (the Bernoulli assembly-yield model of Sec. V).
  static FaultMap random_with_probability(const TileGrid& grid, double p,
                                          Rng& rng);

  friend bool operator==(const FaultMap& a, const FaultMap& b) {
    return a.faulty_ == b.faulty_;
  }

 private:
  TileGrid grid_;
  std::vector<char> faulty_;  // char, not bool: avoids bitset proxy overhead
  std::size_t fault_count_ = 0;
};

/// Directed inter-tile link failures, independent of tile health.
///
/// A tile can be fully alive while one of its outgoing links is dead — the
/// async-FIFO link crossings of Sec. VI are their own failure domain (a
/// stuck synchroniser kills one direction of one link).  The set is keyed
/// by (source tile, outgoing direction); the reverse direction of the same
/// physical channel fails independently.
class LinkFaultSet {
 public:
  LinkFaultSet() : grid_(1, 1) {}
  explicit LinkFaultSet(const TileGrid& grid)
      : grid_(grid), failed_(grid.tile_count() * 4, 0) {}

  const TileGrid& grid() const { return grid_; }

  /// True when the link leaving `from` in direction `d` is failed.  Links
  /// that leave the array (no neighbour) are never reported failed.
  bool is_failed(TileCoord from, Direction d) const {
    if (failed_.empty() || !grid_.contains(from)) return false;
    return failed_[index_of(from, d)];
  }

  void set_failed(TileCoord from, Direction d, bool failed = true);

  std::size_t failed_count() const { return failed_count_; }
  bool empty() const { return failed_count_ == 0; }

  /// All failed links as (source, direction) pairs, in index order.
  std::vector<std::pair<TileCoord, Direction>> failed_links() const;

  friend bool operator==(const LinkFaultSet& a, const LinkFaultSet& b) {
    return a.failed_ == b.failed_;
  }

 private:
  TileGrid grid_;
  std::vector<char> failed_;  ///< tile-major, 4 directions per tile
  std::size_t failed_count_ = 0;

  std::size_t index_of(TileCoord c, Direction d) const {
    return grid_.index_of(c) * 4 + static_cast<std::size_t>(d);
  }
};

}  // namespace wsp
