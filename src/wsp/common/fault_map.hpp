// Fault maps: which tiles of the assembled wafer are faulty.
//
// The paper's resiliency story (Sections IV-VII) revolves around the fault
// map: after assembly, faulty tiles are identified by the JTAG test flow and
// recorded; the clock-forwarding configuration and the kernel's network
// selection are then derived from it.  This class is that record, plus
// samplers for the randomly generated fault maps used by the Monte Carlo
// studies of Figures 4 and 6.
#pragma once

#include <cstddef>
#include <vector>

#include "wsp/common/geometry.hpp"
#include "wsp/common/rng.hpp"

namespace wsp {

/// Boolean per-tile fault state over a TileGrid.
class FaultMap {
 public:
  /// All tiles healthy.
  explicit FaultMap(const TileGrid& grid);

  const TileGrid& grid() const { return grid_; }

  bool is_faulty(TileCoord c) const { return faulty_[grid_.index_of(c)]; }
  bool is_healthy(TileCoord c) const { return !is_faulty(c); }

  void set_faulty(TileCoord c, bool faulty = true);

  std::size_t fault_count() const { return fault_count_; }
  std::size_t healthy_count() const { return grid_.tile_count() - fault_count_; }

  /// Coordinates of all faulty tiles, in linear-index order.
  std::vector<TileCoord> faulty_tiles() const;
  /// Coordinates of all healthy tiles, in linear-index order.
  std::vector<TileCoord> healthy_tiles() const;

  /// True when every in-bounds neighbour of `c` is faulty — the paper's
  /// condition under which a tile is unreachable by both the forwarded
  /// clock and the mesh network (Fig. 4's yellow tile).
  bool all_neighbors_faulty(TileCoord c) const;

  /// Samples a fault map with exactly `n` distinct faulty tiles chosen
  /// uniformly at random — the fault model behind Figs. 4 and 6.
  static FaultMap random_with_count(const TileGrid& grid, std::size_t n,
                                    Rng& rng);

  /// Samples a fault map where each tile fails independently with
  /// probability `p` (the Bernoulli assembly-yield model of Sec. V).
  static FaultMap random_with_probability(const TileGrid& grid, double p,
                                          Rng& rng);

  friend bool operator==(const FaultMap& a, const FaultMap& b) {
    return a.faulty_ == b.faulty_;
  }

 private:
  TileGrid grid_;
  std::vector<char> faulty_;  // char, not bool: avoids bitset proxy overhead
  std::size_t fault_count_ = 0;
};

}  // namespace wsp
