#include "wsp/pdn/strategy.hpp"

#include <algorithm>

namespace wsp::pdn {

namespace {

// Both plane-based schemes are scored off the same peak-draw plane
// solution, so compare_strategies() runs one solve (one cached
// stencil/hierarchy) and derives both reports from it.
StrategyReport ldo_report_from(const SystemConfig& config,
                               const PdnReport& r) {
  StrategyReport s;
  s.edge_voltage_v = config.edge_supply_voltage_v;
  s.plane_current_a = r.total_supply_current_a;
  s.plane_loss_w = r.plane_loss_w;
  s.regulation_loss_w = r.ldo_loss_w;
  s.delivered_power_w = r.delivered_power_w;
  s.input_power_w = r.total_input_power_w;
  s.efficiency = r.efficiency;
  s.area_overhead_fraction = 0.0;  // LDOs live inside the compute chiplets
  s.min_tile_supply_v = r.min_supply_v;
  return s;
}

StrategyReport buck_report_from(const SystemConfig& config,
                                const BuckParams& buck,
                                const PdnReport& ldo_solution) {
  // Same planes, same per-tile logic power, but delivered at the buck input
  // voltage: plane current scales down by (V_buck / V_ff) relative to the
  // LDO scheme, and plane loss by that ratio squared (I^2 R).
  const double logic_power =
      config.tile_peak_power_w * config.total_tiles();
  // Power the converters must pull from the planes.
  const double converter_input_power = logic_power / buck.converter_efficiency;
  const double plane_current = converter_input_power / buck.input_voltage_v;

  // Plane loss: reuse the LDO-scheme solve to get the plane resistance
  // behaviour, then scale by the current ratio squared.  (The droop in the
  // buck scheme is tiny, so the linear scaling is accurate.)
  const double current_ratio =
      plane_current / std::max(ldo_solution.total_supply_current_a, 1e-12);
  const double plane_loss =
      ldo_solution.plane_loss_w * current_ratio * current_ratio;

  StrategyReport s;
  s.edge_voltage_v = buck.input_voltage_v;
  s.plane_current_a = plane_current;
  s.plane_loss_w = plane_loss;
  s.regulation_loss_w = converter_input_power - logic_power;
  s.delivered_power_w = logic_power;
  s.input_power_w = converter_input_power + plane_loss;
  s.efficiency = s.delivered_power_w / s.input_power_w;
  s.area_overhead_fraction = buck.area_overhead_fraction;
  // Droop scales linearly with plane current.
  const double ldo_droop =
      config.edge_supply_voltage_v - ldo_solution.min_supply_v;
  s.min_tile_supply_v = buck.input_voltage_v - ldo_droop * current_ratio;
  return s;
}

}  // namespace

StrategyReport evaluate_ldo_strategy(const SystemConfig& config,
                                     const WaferPdnOptions& options) {
  WaferPdn pdn(config, options);
  return ldo_report_from(config, pdn.solve_uniform(1.0));
}

StrategyReport evaluate_buck_strategy(const SystemConfig& config,
                                      const BuckParams& buck,
                                      const WaferPdnOptions& options) {
  WaferPdn pdn(config, options);
  return buck_report_from(config, buck, pdn.solve_uniform(1.0));
}

StrategyReport evaluate_twv_strategy(const SystemConfig& config,
                                     const TwvParams& twv) {
  // Every tile is fed vertically: the only series resistance is its own
  // via bundle, so there is no wafer-scale droop gradient at all.
  const double i_tile = config.tile_peak_power_w / config.ff_corner_voltage_v;
  const double bundle_r = twv.via_resistance_ohm / twv.vias_per_tile;
  const double drop = i_tile * bundle_r;
  const double v_tile = twv.supply_voltage_v - drop;

  // The LDO still regulates, but from a barely-above-band input, so its
  // headroom loss is small.  Reuse the LDO model at the TWV voltage.
  LdoParams ldo_params;
  ldo_params.min_input_v = std::min(1.3, v_tile);
  const Ldo ldo(ldo_params);
  const LdoOperatingPoint op = ldo.evaluate(v_tile, i_tile);

  const double tiles = config.total_tiles();
  StrategyReport s;
  s.edge_voltage_v = twv.supply_voltage_v;
  s.plane_current_a = tiles * op.i_in;  // carried vertically, not laterally
  s.plane_loss_w = tiles * drop * op.i_in;  // via-bundle IR loss
  s.regulation_loss_w = tiles * op.power_loss_w;
  s.delivered_power_w = tiles * op.v_out * i_tile;
  s.input_power_w = s.delivered_power_w + s.plane_loss_w + s.regulation_loss_w;
  s.efficiency = s.delivered_power_w / s.input_power_w;
  s.area_overhead_fraction = 0.0;  // vias live under the tiles
  s.min_tile_supply_v = v_tile;
  return s;
}

StrategyComparison compare_strategies(const SystemConfig& config,
                                      const BuckParams& buck,
                                      const WaferPdnOptions& options) {
  StrategyComparison cmp;
  // One peak-draw solve serves both plane-based schemes.
  WaferPdn pdn(config, options);
  const PdnReport peak = pdn.solve_uniform(1.0);
  cmp.ldo = ldo_report_from(config, peak);
  cmp.buck = buck_report_from(config, buck, peak);
  cmp.twv = evaluate_twv_strategy(config);
  cmp.plane_current_ratio =
      cmp.ldo.plane_current_a / std::max(cmp.buck.plane_current_a, 1e-12);
  return cmp;
}

DtcBenefit evaluate_deep_trench_decap(const SystemConfig& config,
                                      double dtc_density_f_per_m2,
                                      double loop_response_s) {
  DtcBenefit b;
  b.onchip_decap_f = config.decap_per_tile_f;
  // The substrate area under one tile becomes available for trench caps.
  const double tile_area = config.geometry.tile_pitch_x_m() *
                           config.geometry.tile_pitch_y_m();
  b.dtc_decap_f = dtc_density_f_per_m2 * tile_area;
  b.recovered_area_fraction = config.decap_area_fraction;
  // Largest step the new budget absorbs while staying 100 mV inside the
  // regulation band: I = C * dV / t.
  const double band_margin =
      0.5 * (config.regulated_max_v - config.regulated_min_v);
  b.max_load_step_a =
      (b.onchip_decap_f + b.dtc_decap_f) * band_margin / loop_response_s;
  return b;
}

}  // namespace wsp::pdn
