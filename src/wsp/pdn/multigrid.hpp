// Geometric multigrid hierarchy for the resistive-plane solver.
//
// Red-black SOR is an O(n^1.5) algorithm on an n-node plane: its optimal
// over-relaxation factor approaches 2 as the grid grows, so the sweep count
// climbs with resolution and BENCH_pdn_droop.json showed the parallel sweeps
// barely breaking even — the win left on the table was algorithmic.  A
// geometric V-cycle attacks each error wavelength on the level where it is
// high-frequency: a few red-black sweeps per level kill the local error,
// the residual is restricted to a half-resolution grid, and the recursion
// bottoms out in a dense Cholesky solve on a handful of nodes.  Convergence
// per cycle is grid-size-independent (~0.05-0.1 contraction), so a
// converged solve costs a constant ~30-40 fine-sweep equivalents where SOR
// needs hundreds and growing.
//
// Construction is purely topological — conductances, shunts and the
// Dirichlet set — so ResistiveGrid caches the hierarchy exactly like its
// sweep stencil: invalidated on topology edits, preserved across sink
// updates.  That makes the factorize-once/solve-many shape explicit:
// brownout re-solves, thermal extractions and DSE sweep points all reuse
// one hierarchy, and solve_batch() fans independent right-hand sides over
// the wsp::exec pool with per-RHS workspaces.
//
// Coarsening: every other node per axis, both boundary lines always kept
// (arbitrary grid sizes, no 2^k+1 requirement).  A coarse edge is the
// series combination of the fine edges along its path, scaled by the
// full-weighting row mass it represents; a fine Dirichlet node interior to
// a path clamps the path into shunts-to-zero on its endpoints (the coarse
// equations are error equations, and error is pinned to zero at Dirichlet
// nodes).  Restriction is full weighting (the transpose of bilinear
// prolongation), which for a resistor network is just aggregating nodal
// current mismatch — an extensive quantity — into the coarse control
// volume, so the coarse problem is again a well-posed resistor grid.
//
// Determinism: every level smooths with ResistiveGrid::sweep_color (the
// parallel red-black kernel whose chunking is a pure function of the node
// count), residual/restriction/prolongation are disjoint-write
// parallel_for loops, and the coarsest solve is a serial back-substitution
// — so a V-cycle is bit-identical for every thread count, and inside a
// solve_batch worker the nested parallel constructs degrade to inline
// serial execution with the same chunk boundaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "wsp/pdn/resistive_grid.hpp"

namespace wsp::pdn {

/// The coarse-level operators and inter-level transfer maps for one grid
/// topology.  Immutable after construction; per-solve state lives in a
/// Workspace so concurrent right-hand sides never share scratch.
class MultigridHierarchy {
 public:
  /// Captures the coarse operators for `fine`'s current topology.  The
  /// fine grid must outlive the hierarchy and must not change topology
  /// while it is in use (ResistiveGrid enforces this by resetting its
  /// cached hierarchy on every topology edit).  `coarsest_nodes` bounds
  /// the direct-solve level.  Throws wsp::Error if the coarsest operator
  /// is not positive definite (an ungrounded grid — no Dirichlet node or
  /// shunt reaches it), which SOR would fail to converge on too.
  MultigridHierarchy(const ResistiveGrid& fine, int coarsest_nodes);

  /// Per-solve scratch: residual and coarse-level solution/rhs vectors.
  struct Workspace {
    std::vector<std::vector<double>> r;     ///< residual per level
    std::vector<std::vector<double>> v;     ///< coarse solutions (level >= 1)
    std::vector<std::vector<double>> sink;  ///< coarse rhs (level >= 1)
    std::vector<double> direct;             ///< coarsest dense-solve vector
  };
  Workspace make_workspace() const;

  /// Runs one V-cycle on the fine-level problem `A v = b(sink)`, updating
  /// `v` in place.  Returns the max |update| applied to any fine node
  /// (smoothing deltas and prolongated corrections), the convergence
  /// metric solve() compares against tol.
  double v_cycle(Workspace& ws, double* v, const double* sink,
                 const SolverConfig& config) const;

  /// Full-multigrid bootstrap: restricts the residual of the caller's seed
  /// down the whole hierarchy, direct-solves the coarsest, and works back
  /// up with one V-cycle per level, so the first fine V-cycle starts from
  /// a near-discretization-accurate iterate instead of the raw seed.
  /// Costs ~40% of one V-cycle on top of the level-0 work it includes and
  /// typically replaces 2-3 full V-cycles.  Respects the seed: a good warm
  /// start leaves a small residual and the bootstrap correction shrinks
  /// accordingly.  Returns the max |update| like v_cycle.
  double fmg_bootstrap(Workspace& ws, double* v, const double* sink,
                       const SolverConfig& config) const;

  int levels() const { return static_cast<int>(levels_.size()); }
  int level_width(int level) const { return levels_[level].width; }
  int level_height(int level) const { return levels_[level].height; }

  /// Cost of one V-cycle in units of one full fine-grid red+black sweep:
  /// smoothing sweeps plus ~1.5 sweep-equivalents of residual/transfer
  /// work per level, weighted by level size.
  double sweep_equivalents_per_cycle(const SolverConfig& config) const;

  /// Cost of the FMG bootstrap in the same fine-sweep units.
  double fmg_sweep_equivalents(const SolverConfig& config) const;

 private:
  // 1-D transfer map between a fine axis and its coarse axis.
  struct AxisMap {
    // For each fine coordinate: the two bracketing coarse indices and
    // bilinear weights (lo == hi with weight 1/0 at injection points).
    std::vector<std::int32_t> lo, hi;
    std::vector<double> w_lo, w_hi;
    // Transpose (gather) form: for each coarse index, the fine
    // coordinates and weights that restrict into it.
    std::vector<std::vector<std::pair<std::int32_t, double>>> gather;
    // Full-weighting mass per coarse index: sum of its gather weights —
    // the strip width its edges represent.
    std::vector<double> mass;
  };

  struct Level {
    int width = 0;
    int height = 0;
    std::vector<double> g_east;   // (width-1) x height
    std::vector<double> g_north;  // width x (height-1)
    std::vector<double> shunt_g;  // to the error reference (0 V)
    std::vector<char> dirichlet;
    std::vector<ResistiveGrid::StencilNode> stencil[2];
    // Both colors' node ids in stencil order: the prolongation loop only
    // needs ids, and streaming 4 bytes per node instead of a 40-byte
    // StencilNode keeps it memory-lean (max() is exact under any
    // combine order, so one fused list stays deterministic).
    std::vector<std::uint32_t> active;
    AxisMap from_finer_x;  // empty on level 0
    AxisMap from_finer_y;
    // Flattened full-weighting restriction: per *coarse* node, a CSR-style
    // slice of fine indices and weights (empty for Dirichlet nodes).
    std::vector<std::int32_t> restrict_off;  // coarse_nodes + 1 entries
    std::vector<std::int32_t> restrict_idx;
    std::vector<double> restrict_w;
    // Flattened bilinear prolongation: for each *fine* node, the four
    // coarse indices and weights of its interpolation — the AxisMap
    // product with the div/mod coordinate recovery precomputed, since
    // prolongation is on the solve hot path (profiled at ~1.4x the cost
    // of a smoothing half-sweep without this).
    std::vector<std::int32_t> prolong_idx;  // 4 per fine node
    std::vector<double> prolong_w;          // 4 per fine node
  };

  static AxisMap make_axis_map(int fine_n, int coarse_n);
  static Level coarsen(const Level& fine);
  static void build_stencil(Level& level);
  void build_direct_solver();

  // V-cycle stages, all operating on caller-provided buffers.
  double cycle(std::size_t level, Workspace& ws, double* v,
               const double* sink, const SolverConfig& config) const;
  void residual(const Level& level, const double* v, const double* sink,
                double* r) const;
  /// Full-weighting restriction: coarse_out = sign * R(fine_vals).  The
  /// residual path uses sign = -1 (A e = r with the grid's "sink drawn
  /// out" convention); the FMG rhs chain uses sign = +1.
  void restrict_values(const Level& coarse, const double* fine_vals,
                       double* coarse_out, double sign) const;
  double prolong_correct(const Level& coarse, const Level& fine,
                         const double* coarse_v, double* fine_v) const;
  /// Adds the dense solution of A x = sign * rhs (both indexed by node)
  /// into `v`; returns max |x|.
  double solve_direct(Workspace& ws, const double* rhs, double sign,
                      double* v) const;

  std::vector<Level> levels_;  // [0] mirrors the fine grid's topology

  // Dense Cholesky of the coarsest level over its active (non-Dirichlet,
  // connected) nodes: A = L L^T, factorized once at construction.
  std::vector<std::int32_t> direct_index_;  // node -> unknown index or -1
  std::vector<std::int32_t> direct_node_;   // unknown index -> node
  std::vector<double> direct_l_;            // row-major lower triangle
  int direct_n_ = 0;
};

}  // namespace wsp::pdn
