#include "wsp/pdn/multigrid.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"
#include "wsp/exec/parallel_for.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::pdn {

namespace {
// Minimum stencil nodes per parallel chunk in the transfer/residual loops —
// same break-even reasoning as the sweep grain in resistive_grid.cpp.
constexpr std::size_t kNodeGrain = 256;

// Coarse size of an axis of `n` nodes: every other node, both boundary
// lines always kept (so Dirichlet edges survive on every level and grid
// sizes need not be 2^k+1).  n == 2 cannot coarsen further.
int coarse_dim(int n) {
  if (n <= 2) return n;
  return n % 2 == 0 ? n / 2 + 1 : (n + 1) / 2;
}

// Fine coordinate of coarse index X on an axis of `fine_n` nodes.
int fine_coord(int X, int fine_n) { return std::min(2 * X, fine_n - 1); }

double series(double g1, double g2) {
  const double sum = g1 + g2;
  return sum > 0.0 ? g1 * g2 / sum : 0.0;
}
}  // namespace

MultigridHierarchy::AxisMap MultigridHierarchy::make_axis_map(int fine_n,
                                                              int coarse_n) {
  AxisMap m;
  m.lo.assign(fine_n, 0);
  m.hi.assign(fine_n, 0);
  m.w_lo.assign(fine_n, 0.0);
  m.w_hi.assign(fine_n, 0.0);
  for (int X = 0; X + 1 < coarse_n; ++X) {
    const int f0 = fine_coord(X, fine_n);
    const int f1 = fine_coord(X + 1, fine_n);
    for (int x = f0; x <= f1; ++x) {
      const double t = static_cast<double>(x - f0) / (f1 - f0);
      m.lo[x] = X;
      m.hi[x] = X + 1;
      m.w_lo[x] = 1.0 - t;
      m.w_hi[x] = t;
    }
  }
  // Interval joins and the last coarse node collapse to pure injection.
  const int last = fine_coord(coarse_n - 1, fine_n);
  m.lo[last] = m.hi[last] = coarse_n - 1;
  m.w_lo[last] = 1.0;
  m.w_hi[last] = 0.0;

  m.gather.resize(coarse_n);
  m.mass.assign(coarse_n, 0.0);
  for (int x = 0; x < fine_n; ++x) {
    if (m.w_lo[x] > 0.0) m.gather[m.lo[x]].push_back({x, m.w_lo[x]});
    if (m.hi[x] != m.lo[x] && m.w_hi[x] > 0.0)
      m.gather[m.hi[x]].push_back({x, m.w_hi[x]});
  }
  for (int X = 0; X < coarse_n; ++X)
    for (const auto& [x, w] : m.gather[X]) m.mass[X] += w;
  return m;
}

void MultigridHierarchy::build_stencil(Level& level) {
  // Mirror of ResistiveGrid::rebuild_stencil for a coarse (error-equation)
  // level: shunt references are 0 V, so shunt_flow is identically zero and
  // the shunt conductance appears only in the diagonal.
  const int w = level.width;
  const int h = level.height;
  auto east = [&](int x, int y) {
    return level.g_east[static_cast<std::size_t>(y) * (w - 1) + x];
  };
  auto north = [&](int x, int y) {
    return level.g_north[static_cast<std::size_t>(y) * w + x];
  };
  level.stencil[0].clear();
  level.stencil[1].clear();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto i = static_cast<std::size_t>(y) * w + x;
      if (level.dirichlet[i]) continue;
      ResistiveGrid::StencilNode n{};
      n.node = static_cast<std::uint32_t>(i);
      for (int k = 0; k < 4; ++k) {
        n.nbr[k] = static_cast<std::uint32_t>(i);
        n.g[k] = 0.0;
      }
      if (x > 0) {
        n.g[0] = east(x - 1, y);
        n.nbr[0] = static_cast<std::uint32_t>(i - 1);
      }
      if (x < w - 1) {
        n.g[1] = east(x, y);
        n.nbr[1] = static_cast<std::uint32_t>(i + 1);
      }
      if (y > 0) {
        n.g[2] = north(x, y - 1);
        n.nbr[2] = static_cast<std::uint32_t>(i - w);
      }
      if (y < h - 1) {
        n.g[3] = north(x, y);
        n.nbr[3] = static_cast<std::uint32_t>(i + w);
      }
      n.shunt_flow = 0.0;
      n.gsum = n.g[0] + n.g[1] + n.g[2] + n.g[3] + level.shunt_g[i];
      if (n.gsum <= 0.0) continue;  // isolated on this level
      n.inv_gsum = 1.0 / n.gsum;
      level.stencil[(x + y) & 1].push_back(n);
    }
  }
  level.active.clear();
  for (int color = 0; color < 2; ++color)
    for (const auto& s : level.stencil[color]) level.active.push_back(s.node);
}

MultigridHierarchy::Level MultigridHierarchy::coarsen(const Level& fine) {
  Level c;
  c.width = coarse_dim(fine.width);
  c.height = coarse_dim(fine.height);
  c.from_finer_x = make_axis_map(fine.width, c.width);
  c.from_finer_y = make_axis_map(fine.height, c.height);
  const auto nodes = static_cast<std::size_t>(c.width) * c.height;
  c.g_east.assign(static_cast<std::size_t>(c.width - 1) * c.height, 0.0);
  c.g_north.assign(static_cast<std::size_t>(c.width) * (c.height - 1), 0.0);
  c.shunt_g.assign(nodes, 0.0);
  c.dirichlet.assign(nodes, 0);

  auto f_east = [&](int x, int y) {
    return fine.g_east[static_cast<std::size_t>(y) * (fine.width - 1) + x];
  };
  auto f_north = [&](int x, int y) {
    return fine.g_north[static_cast<std::size_t>(y) * fine.width + x];
  };
  auto f_dirichlet = [&](int x, int y) {
    return fine.dirichlet[static_cast<std::size_t>(y) * fine.width + x] != 0;
  };
  auto c_index = [&](int X, int Y) {
    return static_cast<std::size_t>(Y) * c.width + X;
  };

  for (int Y = 0; Y < c.height; ++Y)
    for (int X = 0; X < c.width; ++X)
      c.dirichlet[c_index(X, Y)] =
          f_dirichlet(fine_coord(X, fine.width), fine_coord(Y, fine.height));

  // Coarse edges: the series combination of the (one or two) fine edges
  // along the path between the coarse nodes, scaled by the full-weighting
  // strip mass of the perpendicular axis.  A fine Dirichlet node interior
  // to the path pins the error to zero there, so the path contributes
  // clamp shunts to its endpoints instead of a through-conductance.
  for (int Y = 0; Y < c.height; ++Y) {
    const int fy = fine_coord(Y, fine.height);
    const double mass = c.from_finer_y.mass[Y];
    for (int X = 0; X + 1 < c.width; ++X) {
      const int f0 = fine_coord(X, fine.width);
      const int f1 = fine_coord(X + 1, fine.width);
      const auto e = static_cast<std::size_t>(Y) * (c.width - 1) + X;
      if (f1 == f0 + 1) {
        c.g_east[e] = mass * f_east(f0, fy);
      } else {
        const double g1 = f_east(f0, fy);
        const double g2 = f_east(f0 + 1, fy);
        if (f_dirichlet(f0 + 1, fy)) {
          c.shunt_g[c_index(X, Y)] += mass * g1;
          c.shunt_g[c_index(X + 1, Y)] += mass * g2;
        } else {
          c.g_east[e] = mass * series(g1, g2);
        }
      }
    }
  }
  for (int X = 0; X < c.width; ++X) {
    const int fx = fine_coord(X, fine.width);
    const double mass = c.from_finer_x.mass[X];
    for (int Y = 0; Y + 1 < c.height; ++Y) {
      const int f0 = fine_coord(Y, fine.height);
      const int f1 = fine_coord(Y + 1, fine.height);
      const auto e = static_cast<std::size_t>(Y) * c.width + X;
      if (f1 == f0 + 1) {
        c.g_north[e] = mass * f_north(fx, f0);
      } else {
        const double g1 = f_north(fx, f0);
        const double g2 = f_north(fx, f0 + 1);
        if (f_dirichlet(fx, f0 + 1)) {
          c.shunt_g[c_index(X, Y)] += mass * g1;
          c.shunt_g[c_index(X, Y + 1)] += mass * g2;
        } else {
          c.g_north[e] = mass * series(g1, g2);
        }
      }
    }
  }

  // Coarse shunts: full-weighting aggregation of the fine shunt
  // conductances in each coarse control volume (fine Dirichlet nodes carry
  // no error, so they contribute nothing).
  for (int Y = 0; Y < c.height; ++Y)
    for (int X = 0; X < c.width; ++X) {
      if (c.dirichlet[c_index(X, Y)]) continue;
      double g = 0.0;
      for (const auto& [fx, wx] : c.from_finer_x.gather[X])
        for (const auto& [fy, wy] : c.from_finer_y.gather[Y]) {
          if (f_dirichlet(fx, fy)) continue;
          g += wx * wy *
               fine.shunt_g[static_cast<std::size_t>(fy) * fine.width + fx];
        }
      c.shunt_g[c_index(X, Y)] += g;
    }

  // Flatten the axis-map product into a CSR gather per coarse node so the
  // hot restriction loop streams contiguous index/weight pairs instead of
  // chasing nested vector-of-pairs.
  c.restrict_off.assign(nodes + 1, 0);
  c.restrict_idx.clear();
  c.restrict_w.clear();
  for (int Y = 0; Y < c.height; ++Y)
    for (int X = 0; X < c.width; ++X) {
      const auto ci = c_index(X, Y);
      if (!c.dirichlet[ci]) {
        for (const auto& [fy, wy] : c.from_finer_y.gather[Y])
          for (const auto& [fx, wx] : c.from_finer_x.gather[X]) {
            c.restrict_idx.push_back(
                static_cast<std::int32_t>(fy) * fine.width + fx);
            c.restrict_w.push_back(wy * wx);
          }
      }
      c.restrict_off[ci + 1] = static_cast<std::int32_t>(c.restrict_idx.size());
    }

  // Flatten the two axis maps into one gather per fine node so the hot
  // prolongation loop is four fused multiply-adds with no coordinate
  // arithmetic.
  const auto fine_nodes =
      static_cast<std::size_t>(fine.width) * fine.height;
  c.prolong_idx.resize(4 * fine_nodes);
  c.prolong_w.resize(4 * fine_nodes);
  for (int y = 0; y < fine.height; ++y) {
    const AxisMap& mx = c.from_finer_x;
    const AxisMap& my = c.from_finer_y;
    const std::int32_t lo_row = my.lo[y] * c.width;
    const std::int32_t hi_row = my.hi[y] * c.width;
    for (int x = 0; x < fine.width; ++x) {
      const auto k = 4 * (static_cast<std::size_t>(y) * fine.width + x);
      c.prolong_idx[k + 0] = lo_row + mx.lo[x];
      c.prolong_idx[k + 1] = lo_row + mx.hi[x];
      c.prolong_idx[k + 2] = hi_row + mx.lo[x];
      c.prolong_idx[k + 3] = hi_row + mx.hi[x];
      c.prolong_w[k + 0] = my.w_lo[y] * mx.w_lo[x];
      c.prolong_w[k + 1] = my.w_lo[y] * mx.w_hi[x];
      c.prolong_w[k + 2] = my.w_hi[y] * mx.w_lo[x];
      c.prolong_w[k + 3] = my.w_hi[y] * mx.w_hi[x];
    }
  }

  build_stencil(c);
  return c;
}

MultigridHierarchy::MultigridHierarchy(const ResistiveGrid& fine,
                                       int coarsest_nodes) {
  WSP_TRACE_SPAN("pdn.mg.build");
  require(coarsest_nodes >= 4, "multigrid coarsest level needs >= 4 nodes");
  Level l0;
  l0.width = fine.width();
  l0.height = fine.height();
  l0.g_east = fine.g_east_;
  l0.g_north = fine.g_north_;
  l0.shunt_g = fine.shunt_g_;
  l0.dirichlet = fine.dirichlet_;
  // The fine level smooths the *original* equation (shunt references keep
  // their configured voltages), so reuse the grid's own stencil verbatim.
  l0.stencil[0] = fine.stencil_[0];
  l0.stencil[1] = fine.stencil_[1];
  for (int color = 0; color < 2; ++color)
    for (const auto& s : l0.stencil[color]) l0.active.push_back(s.node);
  levels_.push_back(std::move(l0));

  while (true) {
    const Level& top = levels_.back();
    if (static_cast<long long>(top.width) * top.height <= coarsest_nodes)
      break;
    if (coarse_dim(top.width) == top.width &&
        coarse_dim(top.height) == top.height)
      break;  // cannot reduce further (degenerate 2xN grids)
    levels_.push_back(coarsen(top));
  }
  build_direct_solver();
}

void MultigridHierarchy::build_direct_solver() {
  // Dense Cholesky of the coarsest level's error operator over its active
  // nodes.  The operator is a grounded resistor network's conductance
  // matrix: symmetric, diagonally dominant, positive definite as long as
  // every active component reaches a Dirichlet node or shunt — exactly the
  // condition for any solver (SOR included) to have a unique solution.
  const Level& bottom = levels_.back();
  const auto nodes = static_cast<std::size_t>(bottom.width) * bottom.height;
  direct_index_.assign(nodes, -1);
  direct_node_.clear();
  for (int color = 0; color < 2; ++color)
    for (const auto& s : bottom.stencil[color]) {
      direct_index_[s.node] = 0;  // mark active
    }
  for (std::size_t i = 0; i < nodes; ++i)
    if (direct_index_[i] == 0) {
      direct_index_[i] = static_cast<std::int32_t>(direct_node_.size());
      direct_node_.push_back(static_cast<std::int32_t>(i));
    }
  direct_n_ = static_cast<int>(direct_node_.size());
  if (direct_n_ == 0) return;  // all-Dirichlet bottom level: nothing to do

  const auto n = static_cast<std::size_t>(direct_n_);
  std::vector<double> a(n * n, 0.0);
  for (int color = 0; color < 2; ++color)
    for (const auto& s : bottom.stencil[color]) {
      const auto row = static_cast<std::size_t>(direct_index_[s.node]);
      a[row * n + row] = s.gsum;
      for (int k = 0; k < 4; ++k) {
        if (s.nbr[k] == s.node || s.g[k] <= 0.0) continue;
        const std::int32_t col = direct_index_[s.nbr[k]];
        if (col >= 0) a[row * n + col] -= s.g[k];
        // Edges to Dirichlet neighbours stay in the diagonal only: the
        // error there is pinned to zero.
      }
    }

  // In-place lower Cholesky (row-major).
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    require(d > 0.0,
            "multigrid coarsest operator is not positive definite — the "
            "grid has a floating region no Dirichlet node or shunt grounds");
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / ljj;
    }
  }
  direct_l_ = std::move(a);
}

MultigridHierarchy::Workspace MultigridHierarchy::make_workspace() const {
  Workspace ws;
  ws.r.resize(levels_.size());
  ws.v.resize(levels_.size());
  ws.sink.resize(levels_.size());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto nodes =
        static_cast<std::size_t>(levels_[l].width) * levels_[l].height;
    ws.r[l].assign(nodes, 0.0);
    if (l > 0) {
      ws.v[l].assign(nodes, 0.0);
      ws.sink[l].assign(nodes, 0.0);
    }
  }
  ws.direct.assign(static_cast<std::size_t>(direct_n_), 0.0);
  return ws;
}

namespace {
// One color's KCL residual into r.  Only active nodes are written:
// Dirichlet/isolated entries rely on the workspace's zero initialization,
// which no path ever dirties.
void residual_color(const std::vector<ResistiveGrid::StencilNode>& st,
                    const double* v, const double* sink, double* r) {
  exec::parallel_for(
      st.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e; ++k) {
          const auto& s = st[k];
          const double flow = s.g[0] * v[s.nbr[0]] + s.g[1] * v[s.nbr[1]] +
                              s.g[2] * v[s.nbr[2]] + s.g[3] * v[s.nbr[3]] +
                              s.shunt_flow;
          r[s.node] = flow - s.gsum * v[s.node] - sink[s.node];
        }
      },
      kNodeGrain);
}
}  // namespace

void MultigridHierarchy::residual(const Level& level, const double* v,
                                  const double* sink, double* r) const {
  residual_color(level.stencil[0], v, sink, r);
  residual_color(level.stencil[1], v, sink, r);
}

void MultigridHierarchy::restrict_values(const Level& coarse,
                                         const double* fine_vals,
                                         double* coarse_out,
                                         double sign) const {
  // Full weighting (transpose of bilinear prolongation): coarse rhs is the
  // aggregated nodal current mismatch.  The grid's sink sign convention is
  // "amperes drawn out", so A e = r uses sign = -1.  Dirichlet coarse
  // nodes have an empty CSR slice and restrict to zero.
  const std::int32_t* off = coarse.restrict_off.data();
  const std::int32_t* idx = coarse.restrict_idx.data();
  const double* w = coarse.restrict_w.data();
  exec::parallel_for(
      static_cast<std::size_t>(coarse.width) * coarse.height,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t ci = b; ci < e; ++ci) {
          double acc = 0.0;
          for (std::int32_t j = off[ci]; j < off[ci + 1]; ++j)
            acc += w[j] * fine_vals[idx[j]];
          coarse_out[ci] = sign * acc;
        }
      },
      kNodeGrain);
}

double MultigridHierarchy::prolong_correct(const Level& coarse,
                                           const Level& fine,
                                           const double* coarse_v,
                                           double* fine_v) const {
  // Bilinear interpolation of the coarse error into the fine level's
  // active nodes only — isolated fine nodes keep their untouched values,
  // matching the SOR solver's behaviour exactly.  Uses the flattened
  // per-node gather built at coarsening time.
  const std::int32_t* idx = coarse.prolong_idx.data();
  const double* w = coarse.prolong_w.data();
  const std::uint32_t* active = fine.active.data();
  return exec::parallel_reduce<double>(
      fine.active.size(), 0.0,
      [&](std::size_t b, std::size_t e) {
        double local = 0.0;
        for (std::size_t k = b; k < e; ++k) {
          const auto node = active[k];
          const auto p = 4 * static_cast<std::size_t>(node);
          const double c = w[p + 0] * coarse_v[idx[p + 0]] +
                           w[p + 1] * coarse_v[idx[p + 1]] +
                           w[p + 2] * coarse_v[idx[p + 2]] +
                           w[p + 3] * coarse_v[idx[p + 3]];
          fine_v[node] += c;
          local = std::max(local, std::abs(c));
        }
        return local;
      },
      [](double a, double b) { return std::max(a, b); }, kNodeGrain);
}

double MultigridHierarchy::solve_direct(Workspace& ws, const double* rhs,
                                        double sign, double* v) const {
  if (direct_n_ == 0) return 0.0;
  const auto n = static_cast<std::size_t>(direct_n_);
  for (std::size_t k = 0; k < n; ++k)
    ws.direct[k] = sign * rhs[direct_node_[k]];
  // L y = rhs, then L^T x = y, in place.
  for (std::size_t i = 0; i < n; ++i) {
    double s = ws.direct[i];
    for (std::size_t k = 0; k < i; ++k) s -= direct_l_[i * n + k] * ws.direct[k];
    ws.direct[i] = s / direct_l_[i * n + i];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = ws.direct[ii];
    for (std::size_t k = ii + 1; k < n; ++k)
      s -= direct_l_[k * n + ii] * ws.direct[k];
    ws.direct[ii] = s / direct_l_[ii * n + ii];
  }
  double max_x = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    v[direct_node_[k]] += ws.direct[k];
    max_x = std::max(max_x, std::abs(ws.direct[k]));
  }
  return max_x;
}

double MultigridHierarchy::cycle(std::size_t level, Workspace& ws, double* v,
                                 const double* sink,
                                 const SolverConfig& config) const {
  const Level& L = levels_[level];
  if (level + 1 == levels_.size()) {
    if (level == 0) {
      // Tiny fine grids: the error-equation direct solve replaces the
      // whole cycle (one residual, one Cholesky back-substitution).
      residual(L, v, sink, ws.r[0].data());
      return solve_direct(ws, ws.r[0].data(), 1.0, v);
    }
    // Coarse bottom level: solve A e = r (= -sink) exactly.
    return solve_direct(ws, sink, -1.0, v);
  }

  double max_update = 0.0;
  double* r = ws.r[level].data();
  for (int s = 0; s + 1 < config.pre_smooth; ++s) {
    max_update = std::max(
        max_update,
        ResistiveGrid::sweep_color(L.stencil[0], config.smooth_omega, v, sink));
    max_update = std::max(
        max_update,
        ResistiveGrid::sweep_color(L.stencil[1], config.smooth_omega, v, sink));
  }
  if (config.pre_smooth > 0) {
    // Last pre-smooth sweep: the second color's residual falls out of the
    // sweep itself, so only the first color needs an explicit half-pass.
    max_update = std::max(
        max_update,
        ResistiveGrid::sweep_color(L.stencil[0], config.smooth_omega, v, sink));
    max_update = std::max(max_update, ResistiveGrid::sweep_color_residual(
                                          L.stencil[1], config.smooth_omega, v,
                                          sink, r));
    residual_color(L.stencil[0], v, sink, r);
  } else {
    residual(L, v, sink, r);
  }

  const Level& C = levels_[level + 1];
  restrict_values(C, r, ws.sink[level + 1].data(), -1.0);
  std::fill(ws.v[level + 1].begin(), ws.v[level + 1].end(), 0.0);
  cycle(level + 1, ws, ws.v[level + 1].data(), ws.sink[level + 1].data(),
        config);
  max_update = std::max(
      max_update, prolong_correct(C, L, ws.v[level + 1].data(), v));

  for (int s = 0; s < config.post_smooth; ++s) {
    max_update = std::max(
        max_update,
        ResistiveGrid::sweep_color(L.stencil[0], config.smooth_omega, v, sink));
    max_update = std::max(
        max_update,
        ResistiveGrid::sweep_color(L.stencil[1], config.smooth_omega, v, sink));
  }
  return max_update;
}

double MultigridHierarchy::v_cycle(Workspace& ws, double* v,
                                   const double* sink,
                                   const SolverConfig& config) const {
  WSP_TRACE_SPAN("pdn.mg.cycle");
  return cycle(0, ws, v, sink, config);
}

double MultigridHierarchy::fmg_bootstrap(Workspace& ws, double* v,
                                         const double* sink,
                                         const SolverConfig& config) const {
  WSP_TRACE_SPAN("pdn.mg.fmg");
  const std::size_t bottom = levels_.size() - 1;
  if (bottom == 0) return cycle(0, ws, v, sink, config);

  // Restrict the error-equation rhs of the caller's seed down the whole
  // chain.  At level l >= 1 the seed is zero, so the residual of
  // `A e = sink` is just -sink and the next rhs restricts directly from
  // the current one with a positive sign.
  residual(levels_[0], v, sink, ws.r[0].data());
  restrict_values(levels_[1], ws.r[0].data(), ws.sink[1].data(), -1.0);
  for (std::size_t l = 1; l < bottom; ++l)
    restrict_values(levels_[l + 1], ws.sink[l].data(),
                    ws.sink[l + 1].data(), 1.0);

  // Exact coarsest solve, then one V-cycle per level on the way up — each
  // level starts from the prolonged correction of the level below, so its
  // cycle only has to clean up interpolation error.  Deeper workspace
  // buffers are dead by the time cycle(l) reuses them as scratch.
  std::fill(ws.v[bottom].begin(), ws.v[bottom].end(), 0.0);
  solve_direct(ws, ws.sink[bottom].data(), -1.0, ws.v[bottom].data());
  for (std::size_t l = bottom; l-- > 1;) {
    std::fill(ws.v[l].begin(), ws.v[l].end(), 0.0);
    prolong_correct(levels_[l + 1], levels_[l], ws.v[l + 1].data(),
                    ws.v[l].data());
    cycle(l, ws, ws.v[l].data(), ws.sink[l].data(), config);
  }
  double max_update =
      prolong_correct(levels_[1], levels_[0], ws.v[1].data(), v);

  // Smooth the interpolated correction into the fine grid so the bootstrap
  // hands the first V-cycle the same kind of iterate it would produce.
  const Level& L = levels_[0];
  for (int s = 0; s < config.post_smooth; ++s) {
    max_update = std::max(
        max_update,
        ResistiveGrid::sweep_color(L.stencil[0], config.smooth_omega, v, sink));
    max_update = std::max(
        max_update,
        ResistiveGrid::sweep_color(L.stencil[1], config.smooth_omega, v, sink));
  }
  return max_update;
}

double MultigridHierarchy::sweep_equivalents_per_cycle(
    const SolverConfig& config) const {
  const double fine_nodes =
      static_cast<double>(levels_[0].width) * levels_[0].height;
  double total = 0.0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const double rel =
        static_cast<double>(levels_[l].width) * levels_[l].height / fine_nodes;
    if (l + 1 == levels_.size()) {
      total += rel;  // direct solve, charged as one sweep of its level
    } else {
      // Smoothing sweeps plus residual + restriction + prolongation.
      // With at least one pre-smooth the second residual half is fused
      // into the sweep, leaving ~1.0 sweep of transfer traffic; without
      // it the full explicit residual costs ~1.5.
      const double transfers = config.pre_smooth > 0 ? 1.0 : 1.5;
      total += rel * (config.pre_smooth + config.post_smooth + transfers);
    }
  }
  return total;
}

double MultigridHierarchy::fmg_sweep_equivalents(
    const SolverConfig& config) const {
  const double fine_nodes =
      static_cast<double>(levels_[0].width) * levels_[0].height;
  auto rel = [&](std::size_t l) {
    return static_cast<double>(levels_[l].width) * levels_[l].height /
           fine_nodes;
  };
  // Fine level: residual + restriction down, prolongation up, post sweeps.
  double total = config.post_smooth + 1.5;
  // Coarsest direct solve plus the rhs chain through every coarse level.
  total += rel(levels_.size() - 1);
  for (std::size_t l = 1; l < levels_.size(); ++l) total += 0.5 * rel(l);
  // One V-cycle per intermediate level, each over its own sub-hierarchy.
  for (std::size_t start = 1; start + 1 < levels_.size(); ++start)
    for (std::size_t l = start; l < levels_.size(); ++l)
      total += rel(l) * (l + 1 == levels_.size()
                             ? 1.0
                             : config.pre_smooth + config.post_smooth + 1.5);
  return total;
}

}  // namespace wsp::pdn
