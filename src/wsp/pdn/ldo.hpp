// Behavioural model of the custom wide-input-range LDO regulator.
//
// Sec. III: every compute chiplet contains an LDO that must produce a
// stable ~1.1 V logic supply while its input varies from 2.5 V (edge tiles)
// down to 1.4 V (center tiles at peak draw), deliver up to 350 mW, and ride
// out 200 mA load steps within a few cycles using ~20 nF of on-chip
// decoupling capacitance.  The paper guarantees the regulated voltage stays
// within [1.0 V, 1.2 V] across PVT corners.
//
// An LDO passes its load current straight through (I_in ~= I_out), so its
// efficiency is V_out / V_in and the headroom (V_in - V_out) is burned as
// heat in the pass device.  That first-order behaviour — plus dropout and a
// single-pole load-step response — is what this model captures; transistor-
// level detail is out of scope (the paper itself omits it "for brevity").
#pragma once

namespace wsp::pdn {

/// Static (DC) parameters of the LDO.
struct LdoParams {
  double target_v = 1.1;      ///< nominal regulated output
  double min_output_v = 1.0;  ///< guaranteed band, low (PVT)
  double max_output_v = 1.2;  ///< guaranteed band, high (PVT)
  double dropout_v = 0.15;    ///< minimum headroom for regulation
  double max_input_v = 2.5;   ///< rated input (edge supply)
  double min_input_v = 1.4;   ///< rated input (center of wafer)
  double quiescent_a = 0.5e-3; ///< ground-pin current of the regulator
  double max_load_a = 0.35;   ///< ~350 mW / 1.0 V
  /// Line-regulation coefficient: output shifts by this fraction of the
  /// input deviation from mid-range (models the imperfect regulation that
  /// Sec. IV says makes non-edge PLL operation unreliable).
  double line_regulation = 0.02;
};

/// Result of evaluating the LDO at one DC operating point.
struct LdoOperatingPoint {
  double v_out = 0.0;        ///< regulated output voltage
  double i_in = 0.0;         ///< current drawn from the plane
  double power_loss_w = 0.0; ///< headroom + quiescent dissipation
  double efficiency = 0.0;   ///< P_out / P_in
  bool in_regulation = false; ///< output within the guaranteed band
  bool in_dropout = false;    ///< insufficient headroom: output tracks input
};

/// DC and small-signal-transient behavioural LDO.
class Ldo {
 public:
  explicit Ldo(const LdoParams& params = {});

  const LdoParams& params() const { return params_; }

  /// DC solution for a given input voltage and load current.
  LdoOperatingPoint evaluate(double v_in, double i_load) const;

  /// Worst-case transient droop (volts below the pre-step output) for a
  /// load step of `i_step` amperes absorbed by `decap_f` farads while the
  /// loop takes `response_s` seconds to react: dV = I * t / C.
  static double load_step_droop(double i_step, double decap_f,
                                double response_s);

  /// True when the steady-state output *and* the worst-case load-step
  /// excursion both stay inside the guaranteed [min, max] output band.
  bool regulation_holds(double v_in, double i_load, double i_step,
                        double decap_f, double response_s) const;

 private:
  LdoParams params_;
};

}  // namespace wsp::pdn
