// Whole-wafer steady-state thermal model.
//
// A 725 W, 15,000 mm^2 system has a heat problem as surely as a power-
// delivery problem; the paper's "design methods for higher-power
// waferscale systems" (Sec. IX ongoing work) hinge on both.  This model
// exploits the thermal-electrical duality — temperature <-> voltage,
// heat <-> current, thermal conductance <-> electrical conductance — and
// reuses the PDN's nodal solver:
//
//   * lateral spreading through the full-thickness silicon wafer
//     (k_Si ~ 149 W/mK, 700 um thick);
//   * a vertical path per unit area to the cold plate (an effective
//     heat-transfer coefficient, modelled as a shunt to ambient);
//   * per-tile heat injection from a power map (uniform peak or a
//     workload map from wsp::arch::tile_power_map).
#pragma once

#include <vector>

#include "wsp/common/config.hpp"
#include "wsp/pdn/resistive_grid.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace wsp::pdn {

struct ThermalOptions {
  int nodes_per_tile = 2;
  double silicon_conductivity_w_mk = 149.0;
  double wafer_thickness_m = 700e-6;
  /// Effective heat-transfer coefficient of the cooling solution, W/m^2K
  /// (2e3 ~ decent forced-air cold plate, 1e4+ ~ liquid).
  double cooling_w_m2k = 2000.0;
  double ambient_c = 25.0;
  double junction_limit_c = 105.0;
  /// Nodal-solver selection for the duality solve.  The default keeps the
  /// historical SOR behaviour at the tighter thermal tolerance; Multigrid
  /// pays off on finely-discretised wafers exactly as it does for the PDN.
  SolverConfig solver{.tol = 1e-8};
};

struct ThermalReport {
  std::vector<double> tile_temperature_c;  ///< by TileGrid::index_of
  double max_c = 0.0;
  double mean_c = 0.0;
  double total_heat_w = 0.0;
  int tiles_over_limit = 0;
  bool solver_converged = false;
};

class WaferThermal {
 public:
  WaferThermal(const SystemConfig& config, const ThermalOptions& options = {});

  /// Solves with per-tile power (watts, TileGrid::index_of order).
  ThermalReport solve(const std::vector<double>& tile_power_w);

  /// Solves with every tile at `activity` x peak power.
  ThermalReport solve_uniform(double activity = 1.0);

  const ThermalOptions& options() const { return options_; }

 private:
  SystemConfig config_;
  ThermalOptions options_;
  // Cached duality grid: topology (slab conductances, cold-plate shunts)
  // is fixed per WaferThermal, so stencil/hierarchy setup is paid once.
  ResistiveGrid grid_;
  std::vector<double> sink_scratch_;

  ResistiveGrid build_grid() const;
};

/// Per-tile *heat* from a PDN solve: every watt entering a tile (logic
/// plus the LDO's burned headroom) becomes heat there, and the planes'
/// own IR loss is spread across the wafer.  Notably, the edge tiles run
/// hottest under the paper's scheme — their LDOs burn the most headroom —
/// which partially cancels the usual hot-center thermal profile.
std::vector<double> heat_map_from_pdn(const SystemConfig& config,
                                      const PdnReport& pdn);

}  // namespace wsp::pdn
