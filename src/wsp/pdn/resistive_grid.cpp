#include "wsp/pdn/resistive_grid.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::pdn {

ResistiveGrid::ResistiveGrid(int width, int height)
    : width_(width), height_(height) {
  require(width >= 2 && height >= 2, "ResistiveGrid needs at least 2x2 nodes");
  const auto nodes = static_cast<std::size_t>(width) * height;
  g_east_.assign(static_cast<std::size_t>(width - 1) * height, 0.0);
  g_north_.assign(static_cast<std::size_t>(width) * (height - 1), 0.0);
  sink_.assign(nodes, 0.0);
  shunt_g_.assign(nodes, 0.0);
  shunt_v_.assign(nodes, 0.0);
  dirichlet_.assign(nodes, 0);
  v_.assign(nodes, 0.0);
}

void ResistiveGrid::set_conductance_east(int x, int y, double siemens) {
  require(x >= 0 && x < width_ - 1 && y >= 0 && y < height_,
          "east edge out of range");
  require(siemens >= 0.0, "conductance must be non-negative");
  g_east_[east_index(x, y)] = siemens;
}

void ResistiveGrid::set_conductance_north(int x, int y, double siemens) {
  require(x >= 0 && x < width_ && y >= 0 && y < height_ - 1,
          "north edge out of range");
  require(siemens >= 0.0, "conductance must be non-negative");
  g_north_[north_index(x, y)] = siemens;
}

void ResistiveGrid::fill_conductances(double gx, double gy) {
  std::fill(g_east_.begin(), g_east_.end(), gx);
  std::fill(g_north_.begin(), g_north_.end(), gy);
}

void ResistiveGrid::set_dirichlet(int x, int y, double volts) {
  const auto i = index(x, y);
  dirichlet_[i] = 1;
  v_[i] = volts;
}

void ResistiveGrid::clear_dirichlet(int x, int y) {
  dirichlet_[index(x, y)] = 0;
}

void ResistiveGrid::set_current_sink(int x, int y, double amperes) {
  sink_[index(x, y)] = amperes;
}

void ResistiveGrid::set_shunt(int x, int y, double siemens, double v_ref) {
  require(siemens >= 0.0, "shunt conductance must be non-negative");
  const auto i = index(x, y);
  shunt_g_[i] = siemens;
  shunt_v_[i] = v_ref;
}

SolveStats ResistiveGrid::solve(double tol, int max_iterations, double omega) {
  require(omega > 0.0 && omega < 2.0, "SOR omega must be in (0,2)");
  SolveStats stats;
  for (int it = 0; it < max_iterations; ++it) {
    double max_delta = 0.0;
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        const auto i = index(x, y);
        if (dirichlet_[i]) continue;
        double gsum = 0.0;
        double flow = 0.0;
        if (x > 0) {
          const double g = g_east_[east_index(x - 1, y)];
          gsum += g;
          flow += g * v_[i - 1];
        }
        if (x < width_ - 1) {
          const double g = g_east_[east_index(x, y)];
          gsum += g;
          flow += g * v_[i + 1];
        }
        if (y > 0) {
          const double g = g_north_[north_index(x, y - 1)];
          gsum += g;
          flow += g * v_[i - static_cast<std::size_t>(width_)];
        }
        if (y < height_ - 1) {
          const double g = g_north_[north_index(x, y)];
          gsum += g;
          flow += g * v_[i + static_cast<std::size_t>(width_)];
        }
        if (shunt_g_[i] > 0.0) {
          gsum += shunt_g_[i];
          flow += shunt_g_[i] * shunt_v_[i];
        }
        if (gsum <= 0.0) continue;  // isolated node: leave as-is
        const double v_new = (flow - sink_[i]) / gsum;
        const double updated = v_[i] + omega * (v_new - v_[i]);
        max_delta = std::max(max_delta, std::abs(updated - v_[i]));
        v_[i] = updated;
      }
    }
    stats.iterations = it + 1;
    stats.residual = max_delta;
    if (max_delta < tol) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

double ResistiveGrid::total_supply_current() const {
  // Current flowing out of every Dirichlet node into the grid.
  double total = 0.0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const auto i = index(x, y);
      if (!dirichlet_[i]) continue;
      double out = 0.0;
      if (x > 0)
        out += g_east_[east_index(x - 1, y)] * (v_[i] - v_[i - 1]);
      if (x < width_ - 1)
        out += g_east_[east_index(x, y)] * (v_[i] - v_[i + 1]);
      if (y > 0)
        out += g_north_[north_index(x, y - 1)] *
               (v_[i] - v_[i - static_cast<std::size_t>(width_)]);
      if (y < height_ - 1)
        out += g_north_[north_index(x, y)] *
               (v_[i] - v_[i + static_cast<std::size_t>(width_)]);
      // Subtract any sink placed directly on the Dirichlet node.
      total += out + sink_[i];
    }
  }
  return total;
}

double ResistiveGrid::dissipated_power() const {
  double p = 0.0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_ - 1; ++x) {
      const double dv = v_[index(x, y)] - v_[index(x + 1, y)];
      p += g_east_[east_index(x, y)] * dv * dv;
    }
  }
  for (int y = 0; y < height_ - 1; ++y) {
    for (int x = 0; x < width_; ++x) {
      const double dv = v_[index(x, y)] - v_[index(x, y + 1)];
      p += g_north_[north_index(x, y)] * dv * dv;
    }
  }
  return p;
}

}  // namespace wsp::pdn
