#include "wsp/pdn/resistive_grid.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"
#include "wsp/exec/parallel_for.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::pdn {

namespace {
// Minimum stencil nodes per parallel chunk.  A sweep node costs ~10 flops,
// so below this the dispatch handshake outweighs the work; grids whose
// per-color count falls under one grain (anything smaller than ~23x23)
// solve entirely on the calling thread.  At 256 the 64x64 wafer grid still
// fans out to 8 chunks per color — enough for an 8-thread pool.
constexpr std::size_t kSweepGrain = 256;
}  // namespace

ResistiveGrid::ResistiveGrid(int width, int height)
    : width_(width), height_(height) {
  require(width >= 2 && height >= 2, "ResistiveGrid needs at least 2x2 nodes");
  const auto nodes = static_cast<std::size_t>(width) * height;
  g_east_.assign(static_cast<std::size_t>(width - 1) * height, 0.0);
  g_north_.assign(static_cast<std::size_t>(width) * (height - 1), 0.0);
  sink_.assign(nodes, 0.0);
  shunt_g_.assign(nodes, 0.0);
  shunt_v_.assign(nodes, 0.0);
  dirichlet_.assign(nodes, 0);
  v_.assign(nodes, 0.0);
}

void ResistiveGrid::set_conductance_east(int x, int y, double siemens) {
  require(x >= 0 && x < width_ - 1 && y >= 0 && y < height_,
          "east edge out of range");
  require(siemens >= 0.0, "conductance must be non-negative");
  g_east_[east_index(x, y)] = siemens;
  stencil_valid_ = false;
}

void ResistiveGrid::set_conductance_north(int x, int y, double siemens) {
  require(x >= 0 && x < width_ && y >= 0 && y < height_ - 1,
          "north edge out of range");
  require(siemens >= 0.0, "conductance must be non-negative");
  g_north_[north_index(x, y)] = siemens;
  stencil_valid_ = false;
}

void ResistiveGrid::fill_conductances(double gx, double gy) {
  std::fill(g_east_.begin(), g_east_.end(), gx);
  std::fill(g_north_.begin(), g_north_.end(), gy);
  stencil_valid_ = false;
}

void ResistiveGrid::set_dirichlet(int x, int y, double volts) {
  const auto i = index(x, y);
  dirichlet_[i] = 1;
  v_[i] = volts;
  stencil_valid_ = false;
}

void ResistiveGrid::clear_dirichlet(int x, int y) {
  dirichlet_[index(x, y)] = 0;
  stencil_valid_ = false;
}

void ResistiveGrid::set_current_sink(int x, int y, double amperes) {
  // Sinks enter only the right-hand side (read live during sweeps), so the
  // stencil survives per-solve load updates — the WaferPdn constant-power
  // loop re-solves with new sinks on an unchanged topology.
  sink_[index(x, y)] = amperes;
}

void ResistiveGrid::set_shunt(int x, int y, double siemens, double v_ref) {
  require(siemens >= 0.0, "shunt conductance must be non-negative");
  const auto i = index(x, y);
  shunt_g_[i] = siemens;
  shunt_v_[i] = v_ref;
  stencil_valid_ = false;
}

double ResistiveGrid::chebyshev_omega(int width, int height) {
  const double rho =
      0.5 * (std::cos(3.14159265358979323846 / width) +
             std::cos(3.14159265358979323846 / height));
  const double omega = 2.0 / (1.0 + std::sqrt(1.0 - rho * rho));
  // Clamp into the open stability interval for degenerate estimates.
  return std::min(std::max(omega, 1.0), 1.999);
}

void ResistiveGrid::rebuild_stencil() {
  stencil_[0].clear();
  stencil_[1].clear();
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const auto i = index(x, y);
      if (dirichlet_[i]) continue;
      StencilNode n{};
      n.node = static_cast<std::uint32_t>(i);
      // Absent neighbours alias the node itself with g = 0: the flow term
      // contributes exactly 0.0 and the sweep body stays branch-free.
      for (int k = 0; k < 4; ++k) {
        n.nbr[k] = static_cast<std::uint32_t>(i);
        n.g[k] = 0.0;
      }
      if (x > 0) {
        n.g[0] = g_east_[east_index(x - 1, y)];
        n.nbr[0] = static_cast<std::uint32_t>(i - 1);
      }
      if (x < width_ - 1) {
        n.g[1] = g_east_[east_index(x, y)];
        n.nbr[1] = static_cast<std::uint32_t>(i + 1);
      }
      if (y > 0) {
        n.g[2] = g_north_[north_index(x, y - 1)];
        n.nbr[2] = static_cast<std::uint32_t>(i - width_);
      }
      if (y < height_ - 1) {
        n.g[3] = g_north_[north_index(x, y)];
        n.nbr[3] = static_cast<std::uint32_t>(i + width_);
      }
      n.shunt_flow = shunt_g_[i] * shunt_v_[i];
      n.gsum = n.g[0] + n.g[1] + n.g[2] + n.g[3] + shunt_g_[i];
      if (n.gsum <= 0.0) continue;  // isolated node: leave as-is
      n.inv_gsum = 1.0 / n.gsum;
      stencil_[(x + y) & 1].push_back(n);
    }
  }
  stencil_valid_ = true;
}

double ResistiveGrid::sweep_color(const std::vector<StencilNode>& nodes,
                                  double omega) {
  WSP_TRACE_SPAN("pdn.sor.sweep");
  // Every node of one color reads only other-color neighbours (and its own
  // previous value) and writes only itself, so chunks are data-independent
  // and the half-sweep is bit-identical for any thread count.  The grain
  // keeps sub-1k-node grids (campaign-sized) on the serial inline path —
  // two pool dispatches per sweep would dwarf the arithmetic there.
  return exec::parallel_reduce<double>(
      nodes.size(), 0.0,
      [&](std::size_t b, std::size_t e) {
        double local_max = 0.0;
        for (std::size_t k = b; k < e; ++k) {
          const StencilNode& s = nodes[k];
          const double flow = s.g[0] * v_[s.nbr[0]] + s.g[1] * v_[s.nbr[1]] +
                              s.g[2] * v_[s.nbr[2]] + s.g[3] * v_[s.nbr[3]] +
                              s.shunt_flow;
          const double v_new = (flow - sink_[s.node]) * s.inv_gsum;
          const double old = v_[s.node];
          const double updated = old + omega * (v_new - old);
          local_max = std::max(local_max, std::abs(updated - old));
          v_[s.node] = updated;
        }
        return local_max;
      },
      [](double a, double b) { return std::max(a, b); }, kSweepGrain);
}

double ResistiveGrid::max_kcl_residual() const {
  // True nodal current residual: |sum_j g_ij (v_j - v_i) + shunt - sink_i|,
  // amperes — zero at the exact solution of every balanced node.
  auto color_max = [&](const std::vector<StencilNode>& nodes) {
    return exec::parallel_reduce<double>(
        nodes.size(), 0.0,
        [&](std::size_t b, std::size_t e) {
          double local_max = 0.0;
          for (std::size_t k = b; k < e; ++k) {
            const StencilNode& s = nodes[k];
            const double flow = s.g[0] * v_[s.nbr[0]] +
                                s.g[1] * v_[s.nbr[1]] +
                                s.g[2] * v_[s.nbr[2]] +
                                s.g[3] * v_[s.nbr[3]] + s.shunt_flow;
            const double r = flow - s.gsum * v_[s.node] - sink_[s.node];
            local_max = std::max(local_max, std::abs(r));
          }
          return local_max;
        },
        [](double a, double b) { return std::max(a, b); }, kSweepGrain);
  };
  return std::max(color_max(stencil_[0]), color_max(stencil_[1]));
}

void ResistiveGrid::bind_metrics(obs::MetricsRegistry* registry,
                                 const std::string& prefix) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.solves = &registry->counter(prefix + "solves");
  metrics_.sweeps = &registry->counter(prefix + "sweeps");
  metrics_.converged = &registry->counter(prefix + "converged");
  metrics_.residual_a = &registry->gauge(prefix + "residual_a");
  metrics_.max_delta_v = &registry->gauge(prefix + "max_delta_v");
}

SolveStats ResistiveGrid::solve(double tol, int max_iterations, double omega) {
  WSP_TRACE_SPAN("pdn.sor.solve");
  if (omega <= 0.0) omega = chebyshev_omega(width_, height_);
  require(omega > 0.0 && omega < 2.0, "SOR omega must be in (0,2)");
  if (!stencil_valid_) rebuild_stencil();

  SolveStats stats;
  for (int it = 0; it < max_iterations; ++it) {
    const double red_delta = sweep_color(stencil_[0], omega);
    const double black_delta = sweep_color(stencil_[1], omega);
    const double max_delta = std::max(red_delta, black_delta);
    stats.iterations = it + 1;
    stats.max_delta_v = max_delta;
    if (max_delta < tol) {
      stats.converged = true;
      break;
    }
  }
  stats.residual = max_kcl_residual();
  if (metrics_.solves != nullptr) {
    metrics_.solves->add();
    metrics_.sweeps->add(static_cast<std::uint64_t>(stats.iterations));
    if (stats.converged) metrics_.converged->add();
    metrics_.residual_a->set(stats.residual);
    metrics_.max_delta_v->set(stats.max_delta_v);
  }
  return stats;
}

double ResistiveGrid::total_supply_current() const {
  // Current flowing out of every Dirichlet node into the grid.
  double total = 0.0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const auto i = index(x, y);
      if (!dirichlet_[i]) continue;
      double out = 0.0;
      if (x > 0)
        out += g_east_[east_index(x - 1, y)] * (v_[i] - v_[i - 1]);
      if (x < width_ - 1)
        out += g_east_[east_index(x, y)] * (v_[i] - v_[i + 1]);
      if (y > 0)
        out += g_north_[north_index(x, y - 1)] *
               (v_[i] - v_[i - static_cast<std::size_t>(width_)]);
      if (y < height_ - 1)
        out += g_north_[north_index(x, y)] *
               (v_[i] - v_[i + static_cast<std::size_t>(width_)]);
      // Subtract any sink placed directly on the Dirichlet node.
      total += out + sink_[i];
    }
  }
  return total;
}

double ResistiveGrid::dissipated_power() const {
  double p = 0.0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_ - 1; ++x) {
      const double dv = v_[index(x, y)] - v_[index(x + 1, y)];
      p += g_east_[east_index(x, y)] * dv * dv;
    }
  }
  for (int y = 0; y < height_ - 1; ++y) {
    for (int x = 0; x < width_; ++x) {
      const double dv = v_[index(x, y)] - v_[index(x, y + 1)];
      p += g_north_[north_index(x, y)] * dv * dv;
    }
  }
  return p;
}

void ResistiveGrid::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("PGRD"));
  w.i32(width_);
  w.i32(height_);
  for (double g : g_east_) w.f64(g);
  for (double g : g_north_) w.f64(g);
  for (double s : sink_) w.f64(s);
  for (double g : shunt_g_) w.f64(g);
  for (double v : shunt_v_) w.f64(v);
  for (char d : dirichlet_) w.b(d != 0);
  for (double v : v_) w.f64(v);
}

void ResistiveGrid::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("PGRD"), "ResistiveGrid");
  const int gw = r.i32();
  const int gh = r.i32();
  if (gw != width_ || gh != height_)
    throw ckpt::Error(ckpt::ErrorKind::TopologyMismatch,
                      "PDN grid " + std::to_string(gw) + "x" +
                          std::to_string(gh) + " vs live " +
                          std::to_string(width_) + "x" +
                          std::to_string(height_));
  for (double& g : g_east_) g = r.f64();
  for (double& g : g_north_) g = r.f64();
  for (double& s : sink_) s = r.f64();
  for (double& g : shunt_g_) g = r.f64();
  for (double& v : shunt_v_) v = r.f64();
  for (char& d : dirichlet_) d = r.b() ? 1 : 0;
  for (double& v : v_) v = r.f64();
  stencil_valid_ = false;  // conductances may have changed; rebuild lazily
}

}  // namespace wsp::pdn
