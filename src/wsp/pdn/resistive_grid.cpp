#include "wsp/pdn/resistive_grid.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"
#include "wsp/exec/parallel_for.hpp"
#include "wsp/obs/trace.hpp"
#include "wsp/pdn/multigrid.hpp"

namespace wsp::pdn {

namespace {
// Minimum stencil nodes per parallel chunk.  A sweep node costs ~10 flops,
// so below this the dispatch handshake outweighs the work; grids whose
// per-color count falls under one grain (anything smaller than ~23x23)
// solve entirely on the calling thread.  At 256 the 64x64 wafer grid still
// fans out to 8 chunks per color — enough for an 8-thread pool.
constexpr std::size_t kSweepGrain = 256;
}  // namespace

ResistiveGrid::ResistiveGrid(int width, int height)
    : width_(width), height_(height) {
  require(width >= 2 && height >= 2, "ResistiveGrid needs at least 2x2 nodes");
  const auto nodes = static_cast<std::size_t>(width) * height;
  g_east_.assign(static_cast<std::size_t>(width - 1) * height, 0.0);
  g_north_.assign(static_cast<std::size_t>(width) * (height - 1), 0.0);
  sink_.assign(nodes, 0.0);
  shunt_g_.assign(nodes, 0.0);
  shunt_v_.assign(nodes, 0.0);
  dirichlet_.assign(nodes, 0);
  v_.assign(nodes, 0.0);
}

// Out-of-line where MultigridHierarchy is complete.
ResistiveGrid::~ResistiveGrid() = default;
ResistiveGrid::ResistiveGrid(ResistiveGrid&&) noexcept = default;
ResistiveGrid& ResistiveGrid::operator=(ResistiveGrid&&) noexcept = default;

void ResistiveGrid::set_conductance_east(int x, int y, double siemens) {
  require(x >= 0 && x < width_ - 1 && y >= 0 && y < height_,
          "east edge out of range");
  require(siemens >= 0.0, "conductance must be non-negative");
  g_east_[east_index(x, y)] = siemens;
  invalidate_topology();
}

void ResistiveGrid::set_conductance_north(int x, int y, double siemens) {
  require(x >= 0 && x < width_ && y >= 0 && y < height_ - 1,
          "north edge out of range");
  require(siemens >= 0.0, "conductance must be non-negative");
  g_north_[north_index(x, y)] = siemens;
  invalidate_topology();
}

void ResistiveGrid::fill_conductances(double gx, double gy) {
  std::fill(g_east_.begin(), g_east_.end(), gx);
  std::fill(g_north_.begin(), g_north_.end(), gy);
  invalidate_topology();
}

void ResistiveGrid::set_dirichlet(int x, int y, double volts) {
  const auto i = index(x, y);
  dirichlet_[i] = 1;
  v_[i] = volts;
  invalidate_topology();
}

void ResistiveGrid::clear_dirichlet(int x, int y) {
  dirichlet_[index(x, y)] = 0;
  invalidate_topology();
}

void ResistiveGrid::set_current_sink(int x, int y, double amperes) {
  // Sinks enter only the right-hand side (read live during sweeps), so the
  // stencil and multigrid hierarchy survive per-solve load updates — the
  // WaferPdn constant-power loop re-solves with new sinks on an unchanged
  // topology.
  sink_[index(x, y)] = amperes;
}

void ResistiveGrid::set_current_sinks(const std::vector<double>& amperes) {
  require(amperes.size() == sink_.size(),
          "sink vector must cover every grid node");
  sink_ = amperes;  // right-hand side only: stencil and hierarchy survive
}

void ResistiveGrid::set_shunt(int x, int y, double siemens, double v_ref) {
  require(siemens >= 0.0, "shunt conductance must be non-negative");
  const auto i = index(x, y);
  shunt_g_[i] = siemens;
  shunt_v_[i] = v_ref;
  invalidate_topology();
}

double ResistiveGrid::chebyshev_omega(int width, int height) {
  const double rho =
      0.5 * (std::cos(3.14159265358979323846 / width) +
             std::cos(3.14159265358979323846 / height));
  const double omega = 2.0 / (1.0 + std::sqrt(1.0 - rho * rho));
  // Clamp into the open stability interval for degenerate estimates.
  return std::min(std::max(omega, 1.0), 1.999);
}

void ResistiveGrid::rebuild_stencil() {
  stencil_[0].clear();
  stencil_[1].clear();
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const auto i = index(x, y);
      if (dirichlet_[i]) continue;
      StencilNode n{};
      n.node = static_cast<std::uint32_t>(i);
      // Absent neighbours alias the node itself with g = 0: the flow term
      // contributes exactly 0.0 and the sweep body stays branch-free.
      for (int k = 0; k < 4; ++k) {
        n.nbr[k] = static_cast<std::uint32_t>(i);
        n.g[k] = 0.0;
      }
      if (x > 0) {
        n.g[0] = g_east_[east_index(x - 1, y)];
        n.nbr[0] = static_cast<std::uint32_t>(i - 1);
      }
      if (x < width_ - 1) {
        n.g[1] = g_east_[east_index(x, y)];
        n.nbr[1] = static_cast<std::uint32_t>(i + 1);
      }
      if (y > 0) {
        n.g[2] = g_north_[north_index(x, y - 1)];
        n.nbr[2] = static_cast<std::uint32_t>(i - width_);
      }
      if (y < height_ - 1) {
        n.g[3] = g_north_[north_index(x, y)];
        n.nbr[3] = static_cast<std::uint32_t>(i + width_);
      }
      n.shunt_flow = shunt_g_[i] * shunt_v_[i];
      n.gsum = n.g[0] + n.g[1] + n.g[2] + n.g[3] + shunt_g_[i];
      if (n.gsum <= 0.0) continue;  // isolated node: leave as-is
      n.inv_gsum = 1.0 / n.gsum;
      stencil_[(x + y) & 1].push_back(n);
    }
  }
  stencil_valid_ = true;
}

void ResistiveGrid::invalidate_topology() {
  stencil_valid_ = false;
  hierarchy_.reset();
}

void ResistiveGrid::prepare_solvers(const SolverConfig& config) {
  if (!stencil_valid_) rebuild_stencil();
  if (config.method == SolverMethod::Multigrid && hierarchy_ == nullptr)
    hierarchy_ = std::make_unique<MultigridHierarchy>(*this,
                                                      config.coarsest_nodes);
}

double ResistiveGrid::sweep_color(const std::vector<StencilNode>& nodes,
                                  double omega, double* v,
                                  const double* sink) {
  WSP_TRACE_SPAN("pdn.sor.sweep");
  // Every node of one color reads only other-color neighbours (and its own
  // previous value) and writes only itself, so chunks are data-independent
  // and the half-sweep is bit-identical for any thread count.  The grain
  // keeps sub-1k-node grids (campaign-sized) on the serial inline path —
  // two pool dispatches per sweep would dwarf the arithmetic there.
  return exec::parallel_reduce<double>(
      nodes.size(), 0.0,
      [&](std::size_t b, std::size_t e) {
        double local_max = 0.0;
        for (std::size_t k = b; k < e; ++k) {
          const StencilNode& s = nodes[k];
          const double flow = s.g[0] * v[s.nbr[0]] + s.g[1] * v[s.nbr[1]] +
                              s.g[2] * v[s.nbr[2]] + s.g[3] * v[s.nbr[3]] +
                              s.shunt_flow;
          const double v_new = (flow - sink[s.node]) * s.inv_gsum;
          const double old = v[s.node];
          const double updated = old + omega * (v_new - old);
          local_max = std::max(local_max, std::abs(updated - old));
          v[s.node] = updated;
        }
        return local_max;
      },
      [](double a, double b) { return std::max(a, b); }, kSweepGrain);
}

double ResistiveGrid::sweep_color_residual(const std::vector<StencilNode>& nodes,
                                           double omega, double* v,
                                           const double* sink, double* r) {
  // Identical to sweep_color, but also stores each node's post-update
  // residual.  On a 5-point stencil the neighbours of a node are all the
  // other color, so once this (second) half-sweep runs, flow is final and
  // r = flow - gsum * v_new - sink = gsum * (v_gs - v_new) falls out of
  // values already in registers — the multigrid cycle gets the residual of
  // this color for free instead of re-walking the stencil.
  return exec::parallel_reduce<double>(
      nodes.size(), 0.0,
      [&](std::size_t b, std::size_t e) {
        double local_max = 0.0;
        for (std::size_t k = b; k < e; ++k) {
          const StencilNode& s = nodes[k];
          const double flow = s.g[0] * v[s.nbr[0]] + s.g[1] * v[s.nbr[1]] +
                              s.g[2] * v[s.nbr[2]] + s.g[3] * v[s.nbr[3]] +
                              s.shunt_flow;
          const double v_new = (flow - sink[s.node]) * s.inv_gsum;
          const double old = v[s.node];
          const double updated = old + omega * (v_new - old);
          local_max = std::max(local_max, std::abs(updated - old));
          v[s.node] = updated;
          r[s.node] = s.gsum * (v_new - updated);
        }
        return local_max;
      },
      [](double a, double b) { return std::max(a, b); }, kSweepGrain);
}

double ResistiveGrid::max_kcl_residual(std::span<const double> v,
                                       std::span<const double> sink) const {
  // True nodal current residual: |sum_j g_ij (v_j - v_i) + shunt - sink_i|,
  // amperes — zero at the exact solution of every balanced node.
  auto color_max = [&](const std::vector<StencilNode>& nodes) {
    return exec::parallel_reduce<double>(
        nodes.size(), 0.0,
        [&](std::size_t b, std::size_t e) {
          double local_max = 0.0;
          for (std::size_t k = b; k < e; ++k) {
            const StencilNode& s = nodes[k];
            const double flow = s.g[0] * v[s.nbr[0]] +
                                s.g[1] * v[s.nbr[1]] +
                                s.g[2] * v[s.nbr[2]] +
                                s.g[3] * v[s.nbr[3]] + s.shunt_flow;
            const double r = flow - s.gsum * v[s.node] - sink[s.node];
            local_max = std::max(local_max, std::abs(r));
          }
          return local_max;
        },
        [](double a, double b) { return std::max(a, b); }, kSweepGrain);
  };
  return std::max(color_max(stencil_[0]), color_max(stencil_[1]));
}

void ResistiveGrid::bind_metrics(obs::MetricsRegistry* registry,
                                 const std::string& prefix) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.solves = &registry->counter(prefix + "solves");
  metrics_.sweeps = &registry->counter(prefix + "sweeps");
  metrics_.converged = &registry->counter(prefix + "converged");
  metrics_.residual_a = &registry->gauge(prefix + "residual_a");
  metrics_.max_delta_v = &registry->gauge(prefix + "max_delta_v");
}

void ResistiveGrid::record_solve(const SolveStats& stats) {
  if (metrics_.solves == nullptr) return;
  metrics_.solves->add();
  metrics_.sweeps->add(static_cast<std::uint64_t>(stats.iterations));
  if (stats.converged) metrics_.converged->add();
  metrics_.residual_a->set(stats.residual);
  metrics_.max_delta_v->set(stats.max_delta_v);
}

SolveStats ResistiveGrid::solve_sor_on(std::span<double> v,
                                       std::span<const double> sink,
                                       double tol, int max_iterations,
                                       double omega) {
  WSP_TRACE_SPAN("pdn.sor.solve");
  if (omega <= 0.0) omega = chebyshev_omega(width_, height_);
  require(omega > 0.0 && omega < 2.0, "SOR omega must be in (0,2)");

  SolveStats stats;
  for (int it = 0; it < max_iterations; ++it) {
    const double red_delta =
        sweep_color(stencil_[0], omega, v.data(), sink.data());
    const double black_delta =
        sweep_color(stencil_[1], omega, v.data(), sink.data());
    const double max_delta = std::max(red_delta, black_delta);
    stats.iterations = it + 1;
    stats.max_delta_v = max_delta;
    if (max_delta < tol) {
      stats.converged = true;
      break;
    }
  }
  stats.fine_sweep_equivalents = stats.iterations;
  stats.residual = max_kcl_residual(v, sink);
  return stats;
}

SolveStats ResistiveGrid::solve_multigrid_on(std::span<double> v,
                                             std::span<const double> sink,
                                             const SolverConfig& config) {
  WSP_TRACE_SPAN("pdn.mg.solve");
  require(config.tol > 0.0, "multigrid tol must be positive");
  MultigridHierarchy::Workspace ws = hierarchy_->make_workspace();
  SolveStats stats;
  double bootstrap_equivalents = 0.0;
  if (config.fmg) {
    // The bootstrap counts as the first iteration: it can converge solves
    // with a warm seed outright (its correction is tol-comparable).
    const double max_delta =
        hierarchy_->fmg_bootstrap(ws, v.data(), sink.data(), config);
    stats.iterations = 1;
    stats.max_delta_v = max_delta;
    stats.converged = max_delta < config.tol;
    bootstrap_equivalents = hierarchy_->fmg_sweep_equivalents(config);
  }
  if (!stats.converged) {
    double prev_delta = 0.0;
    for (int it = stats.iterations; it < config.cycles; ++it) {
      const double max_delta = hierarchy_->v_cycle(ws, v.data(), sink.data(),
                                                   config);
      stats.iterations = it + 1;
      stats.max_delta_v = max_delta;
      if (max_delta < config.tol) {
        stats.converged = true;
        break;
      }
      // For a linearly converging iteration the remaining error after an
      // update of size d is bounded by d * rho / (1 - rho).  A V-cycle
      // contracts at a grid-size-independent rho ~ 0.05, so once two
      // consecutive cycles establish the rate, the solve can stop as soon
      // as the *error* estimate clears tol instead of burning one more
      // cycle pushing the update itself below it.  The clamp keeps the
      // estimate meaningful (and positive) while the rate is still
      // settling or the iteration is not contracting.
      if (prev_delta > 0.0 && max_delta < prev_delta) {
        const double rho = std::min(max_delta / prev_delta, 0.5);
        if (max_delta * rho / (1.0 - rho) < config.tol) {
          stats.converged = true;
          break;
        }
      }
      prev_delta = max_delta;
    }
  }
  stats.fine_sweep_equivalents =
      bootstrap_equivalents +
      (stats.iterations - (config.fmg ? 1 : 0)) *
          hierarchy_->sweep_equivalents_per_cycle(config);
  stats.residual = max_kcl_residual(v, sink);
  return stats;
}

SolveStats ResistiveGrid::solve(double tol, int max_iterations, double omega) {
  if (!stencil_valid_) rebuild_stencil();
  const SolveStats stats = solve_sor_on(v_, sink_, tol, max_iterations, omega);
  record_solve(stats);
  return stats;
}

SolveStats ResistiveGrid::solve(const SolverConfig& config) {
  prepare_solvers(config);
  const SolveStats stats =
      config.method == SolverMethod::Multigrid
          ? solve_multigrid_on(v_, sink_, config)
          : solve_sor_on(v_, sink_, config.tol, config.max_iterations,
                         config.omega);
  record_solve(stats);
  return stats;
}

void ResistiveGrid::solve_batch(std::span<const RhsView> rhs,
                                std::span<SolveStats> stats,
                                const SolverConfig& config) {
  WSP_TRACE_SPAN("pdn.solve_batch");
  require(stats.size() == rhs.size(),
          "solve_batch needs one SolveStats per RhsView");
  const std::size_t nodes = node_count();
  for (const RhsView& r : rhs) {
    require(r.sink.size() == nodes && r.v.size() == nodes,
            "RhsView spans must cover every grid node");
  }
  prepare_solvers(config);

  // Reset the Dirichlet entries of every seed from the grid's fixed values
  // up front — the solvers assume they hold and never write them.
  for (const RhsView& r : rhs) {
    for (std::size_t i = 0; i < nodes; ++i)
      if (dirichlet_[i]) r.v[i] = v_[i];
  }

  // One task per right-hand side (grain 1).  Inside a pool worker, the
  // nested sweeps and reductions execute inline with the same chunk
  // boundaries as a 1-thread run, so each RHS's result is bit-identical to
  // a sequential solve(config) — regardless of thread count or how the
  // batch is distributed.
  exec::parallel_for(
      rhs.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e; ++k) {
          stats[k] = config.method == SolverMethod::Multigrid
                         ? solve_multigrid_on(rhs[k].v, rhs[k].sink, config)
                         : solve_sor_on(rhs[k].v, rhs[k].sink, config.tol,
                                        config.max_iterations, config.omega);
        }
      },
      1);

  // Metrics aggregate serially after the fan-out (counters are atomic, but
  // serial recording keeps gauge "last solve" semantics deterministic).
  for (const SolveStats& s : stats) record_solve(s);
}

void ResistiveGrid::reset_voltages(double volts) {
  for (std::size_t i = 0; i < v_.size(); ++i)
    if (!dirichlet_[i]) v_[i] = volts;
}

double ResistiveGrid::total_supply_current(std::span<const double> v,
                                           std::span<const double> sink) const {
  // Current flowing out of every Dirichlet node into the grid.
  double total = 0.0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const auto i = index(x, y);
      if (!dirichlet_[i]) continue;
      double out = 0.0;
      if (x > 0)
        out += g_east_[east_index(x - 1, y)] * (v[i] - v[i - 1]);
      if (x < width_ - 1)
        out += g_east_[east_index(x, y)] * (v[i] - v[i + 1]);
      if (y > 0)
        out += g_north_[north_index(x, y - 1)] *
               (v[i] - v[i - static_cast<std::size_t>(width_)]);
      if (y < height_ - 1)
        out += g_north_[north_index(x, y)] *
               (v[i] - v[i + static_cast<std::size_t>(width_)]);
      // Subtract any sink placed directly on the Dirichlet node.
      total += out + sink[i];
    }
  }
  return total;
}

double ResistiveGrid::dissipated_power(std::span<const double> v) const {
  double p = 0.0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_ - 1; ++x) {
      const double dv = v[index(x, y)] - v[index(x + 1, y)];
      p += g_east_[east_index(x, y)] * dv * dv;
    }
  }
  for (int y = 0; y < height_ - 1; ++y) {
    for (int x = 0; x < width_; ++x) {
      const double dv = v[index(x, y)] - v[index(x, y + 1)];
      p += g_north_[north_index(x, y)] * dv * dv;
    }
  }
  return p;
}

void ResistiveGrid::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("PGRD"));
  w.i32(width_);
  w.i32(height_);
  for (double g : g_east_) w.f64(g);
  for (double g : g_north_) w.f64(g);
  for (double s : sink_) w.f64(s);
  for (double g : shunt_g_) w.f64(g);
  for (double v : shunt_v_) w.f64(v);
  for (char d : dirichlet_) w.b(d != 0);
  for (double v : v_) w.f64(v);
}

void ResistiveGrid::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("PGRD"), "ResistiveGrid");
  const int gw = r.i32();
  const int gh = r.i32();
  if (gw != width_ || gh != height_)
    throw ckpt::Error(ckpt::ErrorKind::TopologyMismatch,
                      "PDN grid " + std::to_string(gw) + "x" +
                          std::to_string(gh) + " vs live " +
                          std::to_string(width_) + "x" +
                          std::to_string(height_));
  for (double& g : g_east_) g = r.f64();
  for (double& g : g_north_) g = r.f64();
  for (double& s : sink_) s = r.f64();
  for (double& g : shunt_g_) g = r.f64();
  for (double& v : shunt_v_) v = r.f64();
  for (char& d : dirichlet_) d = r.b() ? 1 : 0;
  for (double& v : v_) v = r.f64();
  // Conductances/Dirichlet set may have changed; rebuild both caches lazily.
  invalidate_topology();
}

}  // namespace wsp::pdn
