// Load-step transient simulation of the LDO + on-chip decap (Sec. III).
//
// The paper's requirement: the regulator must absorb a 200 mA load swing
// "within a few cycles" while the output stays inside [1.0 V, 1.2 V],
// backed by ~20 nF of on-chip decoupling capacitance per tile (35 % of the
// tile area!).  This module integrates the single-pole loop response
//
//    C * dV/dt = i_reg(t) - i_load(t)
//    tau * di_reg/dt = i_target(V) - i_reg(t)
//
// with forward Euler at sub-nanosecond steps, where i_target is the loop's
// attempt to restore V to the target (proportional control with the loop
// gain folded into tau).  It reproduces the droop/overshoot waveform and
// checks the regulation band.
#pragma once

#include <functional>
#include <vector>

#include "wsp/pdn/ldo.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace wsp::pdn {

/// One sample of the transient waveform.
struct TransientSample {
  double t_s = 0.0;
  double v_out = 0.0;
  double i_load = 0.0;
  double i_reg = 0.0;
};

struct TransientResult {
  std::vector<TransientSample> waveform;
  double min_v = 0.0;
  double max_v = 0.0;
  /// Time for the output to re-enter and stay within `settle_band_v` of the
  /// target after the last load change (seconds); -1 if it never settles.
  /// "Stay" means the final in-band stretch lasted at least the dwell
  /// requirement (TransientParams::settle_dwell_s): an underdamped output
  /// that is merely *crossing* the band mid-ring when the simulation
  /// horizon ends does not count as settled.
  double settle_time_s = -1.0;
  bool stayed_in_band = false;  ///< never left [min_output_v, max_output_v]
};

struct TransientParams {
  double decap_f = 20e-9;        ///< on-chip decoupling capacitance
  double loop_tau_s = 4e-9;      ///< regulator response time constant
  double loop_gain = 5.0;        ///< A per volt of output error
  double dt_s = 0.05e-9;         ///< integration step
  double settle_band_v = 0.02;   ///< settling window around target
  /// Minimum time the output must remain continuously inside the settle
  /// band before the entry point counts as settled; 0 selects the default
  /// of 5 * loop_tau_s (a ring that re-exits does so well within a few
  /// time constants).
  double settle_dwell_s = 0.0;
};

/// Simulates `duration_s` of operation with load current given by
/// `i_load(t)`.  The LDO params supply the target and the guaranteed band.
TransientResult simulate_load_transient(
    const LdoParams& ldo, const TransientParams& params, double duration_s,
    const std::function<double(double)>& i_load);

/// Convenience: a single step from `i0` to `i1` at `t_step`.
TransientResult simulate_load_step(const LdoParams& ldo,
                                   const TransientParams& params,
                                   double i0, double i1, double t_step,
                                   double duration_s);

/// One epoch of a wafer-level quasi-static transient.
struct WaferTransientEpoch {
  double t_s = 0.0;
  double min_supply_v = 0.0;
  double max_supply_v = 0.0;
  int tiles_out_of_regulation = 0;
  bool converged = false;
};

/// Result of sweeping a sequence of power maps through the plane solver.
struct WaferTransientResult {
  std::vector<WaferTransientEpoch> epochs;
  double worst_min_supply_v = 0.0;  ///< deepest droop over the whole run
  int worst_tiles_out_of_regulation = 0;
  bool all_converged = false;
};

/// Quasi-static wafer transient: each epoch's per-tile power map (watts,
/// TileGrid::index_of order) gets its own steady-state plane solve.  Valid
/// when the epoch duration is long against the plane RC (~ns), which holds
/// for NoC-activity epochs (~us).  All epochs share `pdn`'s one cached
/// topology and are solved as a single WaferPdn::solve_batch — the
/// PDN<->NoC coupling loop (activity -> power map -> droop -> BER) calls
/// this once per coupling window instead of issuing per-epoch solves.
/// Deterministic: results are bit-identical at any thread count.
WaferTransientResult simulate_wafer_transient(
    WaferPdn& pdn, const std::vector<std::vector<double>>& epoch_power_maps,
    double epoch_s);

}  // namespace wsp::pdn
