#include "wsp/pdn/transient.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::pdn {

TransientResult simulate_load_transient(
    const LdoParams& ldo, const TransientParams& params, double duration_s,
    const std::function<double(double)>& i_load) {
  require(params.decap_f > 0.0, "decap must be positive");
  require(params.dt_s > 0.0 && params.dt_s < params.loop_tau_s,
          "integration step must resolve the loop time constant");
  require(duration_s > 0.0, "duration must be positive");

  TransientResult result;
  const auto steps = static_cast<std::size_t>(duration_s / params.dt_s);
  result.waveform.reserve(steps + 1);

  double v = ldo.target_v;
  double i_reg = i_load(0.0);
  double last_load = i_reg;
  double last_change_t = 0.0;
  double settled_since = -1.0;

  result.min_v = v;
  result.max_v = v;

  for (std::size_t n = 0; n <= steps; ++n) {
    const double t = static_cast<double>(n) * params.dt_s;
    const double load = i_load(t);
    if (std::abs(load - last_load) > 1e-12) {
      last_change_t = t;
      settled_since = -1.0;
      last_load = load;
    }

    // Loop tries to source whatever restores the output to target;
    // the pass device cannot sink current (clamp at 0) nor exceed its max.
    const double i_target =
        std::clamp(load + params.loop_gain * (ldo.target_v - v), 0.0,
                   ldo.max_load_a * 1.5);
    i_reg += (i_target - i_reg) * (params.dt_s / params.loop_tau_s);
    v += (i_reg - load) * (params.dt_s / params.decap_f);

    result.min_v = std::min(result.min_v, v);
    result.max_v = std::max(result.max_v, v);

    const bool within = std::abs(v - ldo.target_v) <= params.settle_band_v;
    if (within && settled_since < 0.0) settled_since = t;
    if (!within) settled_since = -1.0;

    result.waveform.push_back({t, v, load, i_reg});
  }

  result.stayed_in_band =
      result.min_v >= ldo.min_output_v && result.max_v <= ldo.max_output_v;
  // `settled_since` marks the start of the FINAL in-band stretch (any
  // band exit resets it, so first-entry timestamps of incomplete rings
  // never survive).  Still, a simulation horizon that happens to end on an
  // in-band sample mid-ring would report the crossing as settled — require
  // the stretch to have lasted the dwell time before believing it.
  const double dwell = params.settle_dwell_s > 0.0 ? params.settle_dwell_s
                                                   : 5.0 * params.loop_tau_s;
  const double t_end = static_cast<double>(steps) * params.dt_s;
  if (settled_since >= 0.0 && t_end - settled_since >= dwell)
    result.settle_time_s = std::max(0.0, settled_since - last_change_t);
  return result;
}

TransientResult simulate_load_step(const LdoParams& ldo,
                                   const TransientParams& params, double i0,
                                   double i1, double t_step,
                                   double duration_s) {
  return simulate_load_transient(
      ldo, params, duration_s,
      [=](double t) { return t < t_step ? i0 : i1; });
}

WaferTransientResult simulate_wafer_transient(
    WaferPdn& pdn, const std::vector<std::vector<double>>& epoch_power_maps,
    double epoch_s) {
  require(epoch_s > 0.0, "epoch duration must be positive");
  require(!epoch_power_maps.empty(), "at least one epoch power map needed");

  const std::vector<PdnReport> reports = pdn.solve_batch(epoch_power_maps);

  WaferTransientResult result;
  result.epochs.reserve(reports.size());
  result.worst_min_supply_v = reports.front().min_supply_v;
  result.all_converged = true;
  for (std::size_t e = 0; e < reports.size(); ++e) {
    const PdnReport& r = reports[e];
    WaferTransientEpoch epoch;
    epoch.t_s = static_cast<double>(e) * epoch_s;
    epoch.min_supply_v = r.min_supply_v;
    epoch.max_supply_v = r.max_supply_v;
    epoch.tiles_out_of_regulation = r.tiles_out_of_regulation;
    epoch.converged = r.solver_converged;
    result.epochs.push_back(epoch);

    result.worst_min_supply_v =
        std::min(result.worst_min_supply_v, r.min_supply_v);
    result.worst_tiles_out_of_regulation = std::max(
        result.worst_tiles_out_of_regulation, r.tiles_out_of_regulation);
    result.all_converged = result.all_converged && r.solver_converged;
  }
  return result;
}

}  // namespace wsp::pdn
