#include "wsp/pdn/ldo.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::pdn {

Ldo::Ldo(const LdoParams& params) : params_(params) {
  require(params.dropout_v > 0.0, "LDO dropout must be positive");
  require(params.min_output_v < params.target_v &&
              params.target_v < params.max_output_v,
          "LDO target must lie inside the guaranteed band");
  require(params.min_input_v > params.min_output_v,
          "LDO minimum input must exceed the output band floor");
}

LdoOperatingPoint Ldo::evaluate(double v_in, double i_load) const {
  require(i_load >= 0.0, "load current cannot be negative");
  LdoOperatingPoint op;

  // Line regulation: the real output drifts slightly with input voltage.
  const double mid_in = 0.5 * (params_.min_input_v + params_.max_input_v);
  const double ideal_out =
      params_.target_v + params_.line_regulation * (v_in - mid_in);

  if (v_in - params_.dropout_v >= ideal_out) {
    op.v_out = ideal_out;
    op.in_dropout = false;
  } else {
    // Dropout: the pass device is fully on; output follows the input.
    op.v_out = std::max(0.0, v_in - params_.dropout_v);
    op.in_dropout = true;
  }

  op.in_regulation = op.v_out >= params_.min_output_v &&
                     op.v_out <= params_.max_output_v &&
                     i_load <= params_.max_load_a;

  op.i_in = i_load + params_.quiescent_a;
  const double p_in = v_in * op.i_in;
  const double p_out = op.v_out * i_load;
  op.power_loss_w = p_in - p_out;
  op.efficiency = p_in > 0.0 ? p_out / p_in : 0.0;
  return op;
}

double Ldo::load_step_droop(double i_step, double decap_f,
                            double response_s) {
  require(decap_f > 0.0, "decoupling capacitance must be positive");
  return std::abs(i_step) * response_s / decap_f;
}

bool Ldo::regulation_holds(double v_in, double i_load, double i_step,
                           double decap_f, double response_s) const {
  const LdoOperatingPoint op = evaluate(v_in, i_load);
  if (!op.in_regulation) return false;
  const double droop = load_step_droop(i_step, decap_f, response_s);
  return (op.v_out - droop) >= params_.min_output_v &&
         (op.v_out + droop) <= params_.max_output_v;
}

}  // namespace wsp::pdn
