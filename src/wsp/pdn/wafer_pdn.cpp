#include "wsp/pdn/wafer_pdn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "wsp/common/error.hpp"
#include "wsp/exec/parallel_for.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::pdn {

namespace {
constexpr int kMaxConstantPowerIterations = 40;
constexpr double kConstantPowerTolV = 1e-5;
// Minimum tiles per parallel chunk: per-tile work is tens of flops, so
// wafers below ~64 tiles run the loops inline on the calling thread.
constexpr std::size_t kTileGrain = 64;
}  // namespace

WaferPdn::WaferPdn(const SystemConfig& config, const WaferPdnOptions& options)
    : config_(config), options_(options), ldo_(options.ldo), grid_(2, 2) {
  config_.validate();
  require(options.nodes_per_tile >= 1, "nodes_per_tile must be >= 1");
  require(options.plane_slotting_factor >= 1.0,
          "slotting can only increase sheet resistance");
  require(options.powered_edges[0] || options.powered_edges[1] ||
              options.powered_edges[2] || options.powered_edges[3],
          "at least one wafer edge must be powered");
  grid_ = build_grid();
  sink_scratch_.assign(grid_.node_count(), 0.0);
}

double WaferPdn::loop_sheet_resistance() const {
  // VDD and ground planes in series for the current loop, each slotted.
  const double per_plane = config_.copper_sheet_resistance_ohm_per_sq *
                           options_.plane_slotting_factor;
  return 2.0 * per_plane;
}

ResistiveGrid WaferPdn::build_grid() const {
  const int k = options_.nodes_per_tile;
  const int nx = config_.array_width * k;
  const int ny = config_.array_height * k;
  ResistiveGrid grid(nx, ny);

  // Plane discretisation: node spacing dx x dy; the conductance of an edge
  // spanning dx with strip width dy is (1/Rs) * dy / dx.
  const double dx = config_.geometry.tile_pitch_x_m() / k;
  const double dy = config_.geometry.tile_pitch_y_m() / k;
  const double rs = loop_sheet_resistance();
  grid.fill_conductances((1.0 / rs) * (dy / dx), (1.0 / rs) * (dx / dy));

  // Powered edges held at the edge supply voltage (connectors are modelled
  // as ideal; connector resistance would simply shift the whole profile).
  const auto& pe = options_.powered_edges;
  const double v_edge = config_.edge_supply_voltage_v;
  for (int x = 0; x < nx; ++x) {
    if (pe[static_cast<int>(Direction::North)]) grid.set_dirichlet(x, ny - 1, v_edge);
    if (pe[static_cast<int>(Direction::South)]) grid.set_dirichlet(x, 0, v_edge);
  }
  for (int y = 0; y < ny; ++y) {
    if (pe[static_cast<int>(Direction::East)]) grid.set_dirichlet(nx - 1, y, v_edge);
    if (pe[static_cast<int>(Direction::West)]) grid.set_dirichlet(0, y, v_edge);
  }
  return grid;
}

namespace {

/// Shared precondition for every power-map entry point: silent NaNs or
/// negative watts used to propagate into the solver and come back out as
/// plausible-looking garbage voltages.
void validate_power_map(const std::vector<double>& tile_power_w,
                        std::size_t tile_count) {
  require(tile_power_w.size() == tile_count,
          "tile power vector size mismatch");
  for (const double p : tile_power_w)
    require(std::isfinite(p) && p >= 0.0,
            "tile power must be finite and non-negative");
}

}  // namespace

PdnReport WaferPdn::solve_uniform(double activity) {
  require(std::isfinite(activity), "activity must be finite");
  require(activity >= 0.0 && activity <= 1.0, "activity must be in [0,1]");
  std::vector<double> power(
      static_cast<std::size_t>(config_.total_tiles()),
      activity * config_.tile_peak_power_w);
  return solve(power);
}

std::vector<double> WaferPdn::tile_currents(
    const std::vector<double>& tile_power_w) const {
  std::vector<double> tile_current(tile_power_w.size());
  for (std::size_t i = 0; i < tile_power_w.size(); ++i)
    tile_current[i] = tile_power_w[i] / config_.ff_corner_voltage_v +
                      (tile_power_w[i] > 0.0 ? options_.ldo.quiescent_a : 0.0);
  return tile_current;
}

void WaferPdn::scatter_sinks(const std::vector<double>& tile_current,
                             std::vector<double>& node_sink) const {
  const TileGrid tiles = config_.grid();
  const int k = options_.nodes_per_tile;
  const double nodes_per_tile = static_cast<double>(k) * k;
  node_sink.assign(grid_.node_count(), 0.0);
  // Per-tile loops are independent (each tile writes only its own k x k
  // block of solver nodes), so they go on the exec pool.  kTileGrain keeps
  // campaign-sized wafers (tens of tiles) on the serial inline path.
  exec::parallel_for(
      tiles.tile_count(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const TileCoord c = tiles.coord_of(i);
          const double per_node = tile_current[i] / nodes_per_tile;
          for (int sy = 0; sy < k; ++sy)
            for (int sx = 0; sx < k; ++sx)
              node_sink[grid_.index(c.x * k + sx, c.y * k + sy)] = per_node;
        }
      },
      kTileGrain);
}

PdnReport WaferPdn::solve(const std::vector<double>& tile_power_w) {
  WSP_TRACE_SPAN("pdn.wafer.solve");
  const TileGrid tiles = config_.grid();
  validate_power_map(tile_power_w, tiles.tile_count());

  const int k = options_.nodes_per_tile;

  // Cold-start seed: the grid is cached across solves for its stencil and
  // multigrid hierarchy, but the numerics must not depend on solve history.
  grid_.reset_voltages(0.0);

  // Initial tile currents.  In ConstantCurrent mode the LDO passes through
  // I = P / V_ff regardless of the plane voltage, so one linear solve
  // suffices.  In ConstantPower mode we iterate I = P / V_node.
  std::vector<double> tile_current = tile_currents(tile_power_w);

  scatter_sinks(tile_current, sink_scratch_);
  grid_.set_current_sinks(sink_scratch_);
  SolveStats stats = grid_.solve(options_.solver);
  bool converged = stats.converged;

  if (options_.load_model == LoadModel::ConstantPower) {
    for (int outer = 0; outer < kMaxConstantPowerIterations; ++outer) {
      std::vector<double> prev_v(tile_power_w.size());
      exec::parallel_for(
          tiles.tile_count(),
          [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              const TileCoord c = tiles.coord_of(i);
              prev_v[i] = grid_.voltage(c.x * k, c.y * k);
              const double v = std::max(prev_v[i], 0.5);  // guard /small
              tile_current[i] =
                  tile_power_w[i] / v +
                  (tile_power_w[i] > 0.0 ? options_.ldo.quiescent_a : 0.0);
            }
          },
          kTileGrain);
      scatter_sinks(tile_current, sink_scratch_);
      grid_.set_current_sinks(sink_scratch_);
      stats = grid_.solve(options_.solver);
      converged = stats.converged;
      const double max_dv = exec::parallel_reduce<double>(
          tiles.tile_count(), 0.0,
          [&](std::size_t b, std::size_t e) {
            double local = 0.0;
            for (std::size_t i = b; i < e; ++i) {
              const TileCoord c = tiles.coord_of(i);
              local = std::max(
                  local,
                  std::abs(grid_.voltage(c.x * k, c.y * k) - prev_v[i]));
            }
            return local;
          },
          [](double a, double b) { return std::max(a, b); }, kTileGrain);
      if (max_dv < kConstantPowerTolV) break;
    }
  }

  return extract_report(grid_.voltages(), grid_.current_sinks(), tile_power_w,
                        converged);
}

std::vector<PdnReport> WaferPdn::solve_batch(
    const std::vector<std::vector<double>>& tile_power_maps) {
  // Cold start: throwaway zero seeds, same code path as the warm variant.
  std::vector<std::vector<double>> seeds(tile_power_maps.size());
  return solve_batch_warm(tile_power_maps, seeds, nullptr);
}

std::vector<PdnReport> WaferPdn::solve_batch_warm(
    const std::vector<std::vector<double>>& tile_power_maps,
    std::vector<std::vector<double>>& seeds,
    std::vector<SolveStats>* stats_out) {
  WSP_TRACE_SPAN("pdn.wafer.solve_batch");
  require(options_.load_model == LoadModel::ConstantCurrent,
          "solve_batch requires ConstantCurrent loads (constant-power "
          "iteration couples sinks to its own solution)");
  const TileGrid tiles = config_.grid();
  const std::size_t n = tile_power_maps.size();
  const std::size_t nodes = grid_.node_count();
  require(seeds.size() == n, "warm-start seed count must match power maps");

  // Stage every right-hand side: per-map node sinks plus the caller's seed
  // voltages (solve_batch itself re-seeds the Dirichlet entries, so a
  // stale or zero seed can never corrupt the boundary conditions).
  std::vector<std::vector<double>> sinks(n);
  std::vector<RhsView> rhs(n);
  for (std::size_t m = 0; m < n; ++m) {
    validate_power_map(tile_power_maps[m], tiles.tile_count());
    if (seeds[m].empty())
      seeds[m].assign(nodes, 0.0);
    else
      require(seeds[m].size() == nodes,
              "warm-start seed length must equal node_count()");
    scatter_sinks(tile_currents(tile_power_maps[m]), sinks[m]);
    rhs[m] = RhsView{sinks[m], std::span<double>(seeds[m])};
  }

  std::vector<SolveStats> stats(n);
  grid_.solve_batch(rhs, stats, options_.solver);
  if (stats_out != nullptr) *stats_out = stats;

  std::vector<PdnReport> reports;
  reports.reserve(n);
  for (std::size_t m = 0; m < n; ++m)
    reports.push_back(extract_report(rhs[m].v, rhs[m].sink,
                                     tile_power_maps[m],
                                     stats[m].converged));
  return reports;
}

PdnReport WaferPdn::extract_report(std::span<const double> node_v,
                                   std::span<const double> node_sink,
                                   const std::vector<double>& tile_power_w,
                                   bool converged) const {
  const TileGrid tiles = config_.grid();
  const int k = options_.nodes_per_tile;

  PdnReport report;
  report.solver_converged = converged;
  report.tiles.resize(tiles.tile_count());

  // LDO re-derivation is independent per tile: fan the evaluate() calls out
  // over the pool, carrying the aggregates as per-chunk partials combined
  // in fixed chunk order (bit-identical for any thread count).
  struct Partial {
    double min_v = std::numeric_limits<double>::infinity();
    double max_v = -std::numeric_limits<double>::infinity();
    double ldo_loss_w = 0.0;
    double delivered_power_w = 0.0;
    int out_of_regulation = 0;
  };
  const Partial agg = exec::parallel_reduce<Partial>(
      tiles.tile_count(), Partial{},
      [&](std::size_t b, std::size_t e) {
        Partial p;
        for (std::size_t i = b; i < e; ++i) {
          const TileCoord c = tiles.coord_of(i);
          // Tile supply voltage: mean of its solver nodes.
          double v = 0.0;
          for (int sy = 0; sy < k; ++sy)
            for (int sx = 0; sx < k; ++sx)
              v += node_v[grid_.index(c.x * k + sx, c.y * k + sy)];
          v /= static_cast<double>(k) * k;

          TilePower& tp = report.tiles[i];
          tp.supply_v = v;
          const double i_load = tile_power_w[i] / config_.ff_corner_voltage_v;
          const LdoOperatingPoint op = ldo_.evaluate(v, i_load);
          tp.regulated_v = op.v_out;
          tp.plane_current_a = op.i_in;
          tp.ldo_loss_w = op.power_loss_w;
          tp.in_regulation = op.in_regulation;

          p.min_v = std::min(p.min_v, v);
          p.max_v = std::max(p.max_v, v);
          p.ldo_loss_w += op.power_loss_w;
          p.delivered_power_w += op.v_out * i_load;
          if (!op.in_regulation) ++p.out_of_regulation;
        }
        return p;
      },
      [](Partial a, const Partial& b) {
        a.min_v = std::min(a.min_v, b.min_v);
        a.max_v = std::max(a.max_v, b.max_v);
        a.ldo_loss_w += b.ldo_loss_w;
        a.delivered_power_w += b.delivered_power_w;
        a.out_of_regulation += b.out_of_regulation;
        return a;
      },
      kTileGrain);
  report.min_supply_v = agg.min_v;
  report.max_supply_v = agg.max_v;
  report.ldo_loss_w = agg.ldo_loss_w;
  report.delivered_power_w = agg.delivered_power_w;
  report.tiles_out_of_regulation = agg.out_of_regulation;

  report.total_supply_current_a =
      grid_.total_supply_current(node_v, node_sink);
  report.plane_loss_w = grid_.dissipated_power(node_v);
  report.total_input_power_w =
      report.total_supply_current_a * config_.edge_supply_voltage_v;
  report.efficiency = report.total_input_power_w > 0.0
                          ? report.delivered_power_w / report.total_input_power_w
                          : 0.0;
  if (metrics_ != nullptr) {
    metrics_->counter("pdn.solves").add();
    metrics_->gauge("pdn.min_supply_v").set(report.min_supply_v);
    metrics_->gauge("pdn.max_supply_v").set(report.max_supply_v);
    metrics_->gauge("pdn.total_supply_current_a")
        .set(report.total_supply_current_a);
    metrics_->gauge("pdn.plane_loss_w").set(report.plane_loss_w);
    metrics_->gauge("pdn.ldo_loss_w").set(report.ldo_loss_w);
    metrics_->gauge("pdn.efficiency").set(report.efficiency);
    metrics_->gauge("pdn.tiles_out_of_regulation")
        .set(static_cast<double>(report.tiles_out_of_regulation));
  }
  return report;
}

std::vector<double> WaferPdn::midline_profile(const PdnReport& report,
                                              const TileGrid& grid) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(grid.width()));
  const int y = grid.height() / 2;
  for (int x = 0; x < grid.width(); ++x)
    out.push_back(report.tiles[grid.index_of({x, y})].supply_v);
  return out;
}

std::vector<double> WaferPdn::ring_profile(const PdnReport& report,
                                           const TileGrid& grid) {
  const int max_ring = std::min(grid.width(), grid.height()) / 2;
  std::vector<double> sum(static_cast<std::size_t>(max_ring) + 1, 0.0);
  std::vector<int> count(static_cast<std::size_t>(max_ring) + 1, 0);
  grid.for_each([&](TileCoord c) {
    const int ring = std::min(grid.distance_to_edge(c), max_ring);
    sum[ring] += report.tiles[grid.index_of(c)].supply_v;
    ++count[ring];
  });
  std::vector<double> out;
  out.reserve(sum.size());
  for (std::size_t i = 0; i < sum.size(); ++i)
    out.push_back(count[i] > 0 ? sum[i] / count[i] : 0.0);
  return out;
}

}  // namespace wsp::pdn
