// Power-delivery strategy comparison (Sec. III).
//
// The paper weighs two schemes before committing to edge power delivery
// with per-chiplet LDOs:
//
//   1. "Buck": deliver ~12 V at the edge and down-convert near the chiplets
//      with switching regulators.  Plane current falls ~12x (so plane loss
//      falls ~144x), but the bulky off-chip inductors/capacitors consume an
//      estimated 25-30 % of wafer area, disrupt the regular chiplet array,
//      and increase design complexity.
//
//   2. "LDO": deliver 2.5 V at the edge, let the planes droop toward the
//      center, and regulate locally with wide-input LDOs.  No area
//      overhead, simple — but the plane carries the full ~290 A and the
//      LDO burns its headroom, so efficiency is lower.
//
// The paper chose (2) for its sub-kW prototype.  This module quantifies
// that trade-off so the decision can be reproduced (and explored at other
// power levels, the paper's stated future work).
#pragma once

#include "wsp/common/config.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace wsp::pdn {

/// Parameters of the hypothetical buck-converter scheme.
struct BuckParams {
  double input_voltage_v = 12.0;     ///< edge delivery voltage
  double converter_efficiency = 0.9; ///< switching converter efficiency
  double area_overhead_fraction = 0.275;  ///< 25-30 % of wafer area
};

/// Outcome of evaluating one strategy at peak draw.
struct StrategyReport {
  double edge_voltage_v = 0.0;
  double plane_current_a = 0.0;   ///< total current in the power planes
  double plane_loss_w = 0.0;      ///< IR loss in the planes
  double regulation_loss_w = 0.0; ///< LDO headroom or buck switching loss
  double delivered_power_w = 0.0; ///< power reaching tile logic
  double input_power_w = 0.0;
  double efficiency = 0.0;        ///< delivered / input
  double area_overhead_fraction = 0.0;  ///< wafer area lost to regulation
  double min_tile_supply_v = 0.0; ///< worst-case voltage at a chiplet
};

/// Side-by-side comparison (the quantitative core of Sec. III).
struct StrategyComparison {
  StrategyReport ldo;
  StrategyReport buck;
  StrategyReport twv;  ///< the under-development alternative (ref [13])
  /// Ratio of plane currents (LDO scheme / buck scheme); the paper quotes
  /// "lower the current delivered through the power planes by ~12x".
  double plane_current_ratio = 0.0;
};

/// Deep-trench decoupling capacitors in the Si-IF substrate (the paper's
/// footnote 2, ref [14]): moving decap off the chiplets recovers the
/// ~35 % of tile area currently spent on it and increases the capacitance
/// budget.
struct DtcBenefit {
  double onchip_decap_f = 0.0;      ///< today's 20 nF/tile
  double dtc_decap_f = 0.0;         ///< achievable under one tile footprint
  double recovered_area_fraction = 0.0;  ///< of each tile, freed for logic
  double max_load_step_a = 0.0;     ///< step the new decap absorbs in-band
};

/// Evaluates substrate deep-trench decap at `dtc_density_f_per_m2`
/// (state-of-the-art trench caps reach ~200-1000 nF/mm^2).
DtcBenefit evaluate_deep_trench_decap(const SystemConfig& config,
                                      double dtc_density_f_per_m2,
                                      double loop_response_s = 4e-9);

/// Evaluates the edge-LDO scheme by solving the wafer PDN at peak draw.
StrategyReport evaluate_ldo_strategy(const SystemConfig& config,
                                     const WaferPdnOptions& options = {});

/// Evaluates the buck scheme analytically: the same tile load, delivered
/// at `buck.input_voltage_v` through the same planes, down-converted near
/// the tiles at `converter_efficiency`, paying `area_overhead_fraction`.
StrategyReport evaluate_buck_strategy(const SystemConfig& config,
                                      const BuckParams& buck = {},
                                      const WaferPdnOptions& options = {});

/// Parameters of the through-wafer-via (TWV) scheme the paper rejected
/// only because the technology was "still under development" (Sec. III,
/// ref [13]): power enters through ~700 um-deep vias across the full
/// wafer thickness, directly under every tile, so the lateral planes
/// carry almost no current.
struct TwvParams {
  double supply_voltage_v = 1.5;   ///< headroom just above the LDO band
  double via_resistance_ohm = 0.01;  ///< one TWV
  int vias_per_tile = 16;
};

/// Evaluates backside TWV delivery: per-tile drop is only the via-bundle
/// IR drop; lateral plane loss is negligible; no wafer-area overhead
/// (vias sit under the tiles).  This is the paper's "ongoing work"
/// endpoint for higher-power systems.
StrategyReport evaluate_twv_strategy(const SystemConfig& config,
                                     const TwvParams& twv = {});

/// Runs both evaluations and pairs them.
StrategyComparison compare_strategies(const SystemConfig& config,
                                      const BuckParams& buck = {},
                                      const WaferPdnOptions& options = {});

}  // namespace wsp::pdn
