#include "wsp/pdn/thermal.hpp"

#include <algorithm>
#include <numeric>

#include "wsp/common/error.hpp"
#include "wsp/exec/parallel_for.hpp"

namespace wsp::pdn {

namespace {
// Minimum tiles per parallel chunk; campaign-sized wafers stay inline.
constexpr std::size_t kTileGrain = 64;
}  // namespace

WaferThermal::WaferThermal(const SystemConfig& config,
                           const ThermalOptions& options)
    : config_(config), options_(options), grid_(2, 2) {
  config_.validate();
  require(options.nodes_per_tile >= 1, "nodes_per_tile must be >= 1");
  require(options.silicon_conductivity_w_mk > 0.0 &&
              options.wafer_thickness_m > 0.0 && options.cooling_w_m2k > 0.0,
          "thermal parameters must be positive");
  grid_ = build_grid();
  sink_scratch_.assign(grid_.node_count(), 0.0);
}

ResistiveGrid WaferThermal::build_grid() const {
  const int k = options_.nodes_per_tile;
  const int nx = config_.array_width * k;
  const int ny = config_.array_height * k;
  ResistiveGrid grid(nx, ny);

  // Lateral spreading: conductance of a silicon slab segment.
  const double dx = config_.geometry.tile_pitch_x_m() / k;
  const double dy = config_.geometry.tile_pitch_y_m() / k;
  const double kt = options_.silicon_conductivity_w_mk *
                    options_.wafer_thickness_m;
  grid.fill_conductances(kt * dy / dx, kt * dx / dy);

  // Vertical path to the cold plate under every node.
  const double g_vert = options_.cooling_w_m2k * dx * dy;
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x)
      grid.set_shunt(x, y, g_vert, options_.ambient_c);
  return grid;
}

ThermalReport WaferThermal::solve(const std::vector<double>& tile_power_w) {
  const TileGrid tiles = config_.grid();
  require(tile_power_w.size() == tiles.tile_count(),
          "tile power vector size mismatch");

  const int k = options_.nodes_per_tile;

  // Heat injection: negative current sinks, staged into one bulk setter.
  // Each tile writes only its own k x k node block, so the loop
  // parallelises over the exec pool.
  const double nodes_per_tile = static_cast<double>(k) * k;
  std::fill(sink_scratch_.begin(), sink_scratch_.end(), 0.0);
  exec::parallel_for(
      tiles.tile_count(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const TileCoord c = tiles.coord_of(i);
          const double per_node = tile_power_w[i] / nodes_per_tile;
          for (int sy = 0; sy < k; ++sy)
            for (int sx = 0; sx < k; ++sx)
              sink_scratch_[grid_.index(c.x * k + sx, c.y * k + sy)] =
                  -per_node;
        }
      },
      kTileGrain);
  grid_.set_current_sinks(sink_scratch_);

  // Cold-start seed each solve: results must not depend on solve history.
  grid_.reset_voltages(0.0);
  const SolveStats stats = grid_.solve(options_.solver);

  ThermalReport report;
  report.solver_converged = stats.converged;
  report.tile_temperature_c.resize(tiles.tile_count());
  report.total_heat_w =
      std::accumulate(tile_power_w.begin(), tile_power_w.end(), 0.0);
  // Per-tile temperature extraction with order-fixed partial aggregates
  // (bit-identical for any thread count).
  struct Partial {
    double max_c = 0.0;
    double sum_c = 0.0;
    int over_limit = 0;
  };
  const Partial agg = exec::parallel_reduce<Partial>(
      tiles.tile_count(), Partial{},
      [&](std::size_t b, std::size_t e) {
        Partial p;
        for (std::size_t i = b; i < e; ++i) {
          const TileCoord c = tiles.coord_of(i);
          double t = 0.0;
          for (int sy = 0; sy < k; ++sy)
            for (int sx = 0; sx < k; ++sx)
              t += grid_.voltage(c.x * k + sx, c.y * k + sy);
          t /= nodes_per_tile;
          report.tile_temperature_c[i] = t;
          p.max_c = std::max(p.max_c, t);
          p.sum_c += t;
          if (t > options_.junction_limit_c) ++p.over_limit;
        }
        return p;
      },
      [](Partial a, const Partial& b) {
        a.max_c = std::max(a.max_c, b.max_c);
        a.sum_c += b.sum_c;
        a.over_limit += b.over_limit;
        return a;
      },
      kTileGrain);
  report.max_c = std::max(report.max_c, agg.max_c);
  report.tiles_over_limit = agg.over_limit;
  report.mean_c = agg.sum_c / static_cast<double>(tiles.tile_count());
  return report;
}

std::vector<double> heat_map_from_pdn(const SystemConfig& config,
                                      const PdnReport& pdn) {
  require(pdn.tiles.size() ==
              static_cast<std::size_t>(config.total_tiles()),
          "PDN report does not match the configuration");
  const double plane_share =
      pdn.plane_loss_w / static_cast<double>(config.total_tiles());
  std::vector<double> heat(pdn.tiles.size());
  for (std::size_t i = 0; i < pdn.tiles.size(); ++i)
    heat[i] = pdn.tiles[i].supply_v * pdn.tiles[i].plane_current_a +
              plane_share;
  return heat;
}

ThermalReport WaferThermal::solve_uniform(double activity) {
  require(activity >= 0.0 && activity <= 1.0, "activity must be in [0,1]");
  std::vector<double> power(
      static_cast<std::size_t>(config_.total_tiles()),
      activity * config_.tile_peak_power_w);
  return solve(power);
}

}  // namespace wsp::pdn
