// Whole-wafer power-delivery analysis (Sec. III, Fig. 2).
//
// Combines the resistive-plane solver with the per-tile LDO model to answer
// the paper's power-delivery questions: what voltage does each tile receive,
// does the LDO hold regulation everywhere, how much power is lost in the
// planes and the regulators, and what does the droop profile from edge to
// center look like.
//
// Electrical model: the VDD and ground planes are each a slotted 2 um
// copper sheet; the load current traverses both, so the solver uses the
// round-trip (loop) sheet resistance.  The wafer edge is held at the edge
// supply voltage on the powered edges.  Each tile's LDO passes its load
// current through unchanged (constant-current load), which is why the paper
// can quote "about 290 A" independent of where the droop settles; a
// constant-power mode is provided as an ablation.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "wsp/common/config.hpp"
#include "wsp/common/geometry.hpp"
#include "wsp/pdn/ldo.hpp"
#include "wsp/pdn/resistive_grid.hpp"

namespace wsp::pdn {

/// How tile loads are modelled during the plane solve.
enum class LoadModel {
  ConstantCurrent,  ///< I_tile fixed at P_peak / V_ff (LDO pass-through)
  ConstantPower,    ///< I_tile = P_tile / V_node, solved self-consistently
};

struct WaferPdnOptions {
  /// Grid refinement: solver nodes per tile along each axis.
  int nodes_per_tile = 2;
  /// Multiplier on plane sheet resistance accounting for plane slotting
  /// (slotted planes are required for manufacturability; calibrated so the
  /// full prototype's center voltage lands at the paper's ~1.4 V).
  double plane_slotting_factor = 2.9;
  /// Which wafer edges carry power connectors (N, E, S, W).
  std::array<bool, 4> powered_edges{true, true, true, true};
  LoadModel load_model = LoadModel::ConstantCurrent;
  LdoParams ldo{};
  /// Plane-solver selection and tuning (SOR vs multigrid).  The grid
  /// topology is fixed per WaferPdn, so the multigrid hierarchy is built
  /// once and amortized over every solve / batch / brownout re-solve.
  SolverConfig solver{};
};

/// Per-tile result of a PDN solve.
struct TilePower {
  double supply_v = 0.0;      ///< plane voltage delivered to the tile
  double regulated_v = 0.0;   ///< LDO output
  double plane_current_a = 0.0;
  double ldo_loss_w = 0.0;
  bool in_regulation = false;
};

/// Aggregate result of a PDN solve.
struct PdnReport {
  std::vector<TilePower> tiles;       ///< indexed by TileGrid::index_of
  double min_supply_v = 0.0;          ///< worst (center) plane voltage
  double max_supply_v = 0.0;          ///< best (edge) plane voltage
  double total_supply_current_a = 0.0;
  double total_input_power_w = 0.0;   ///< power entering the wafer edge
  double plane_loss_w = 0.0;          ///< IR loss in the power planes
  double ldo_loss_w = 0.0;            ///< headroom loss in all LDOs
  double delivered_power_w = 0.0;     ///< power reaching tile logic
  double efficiency = 0.0;            ///< delivered / input
  int tiles_out_of_regulation = 0;
  bool solver_converged = false;
};

/// Whole-wafer PDN model bound to one SystemConfig.
class WaferPdn {
 public:
  WaferPdn(const SystemConfig& config, const WaferPdnOptions& options = {});

  /// Solves the planes with every tile drawing `activity` x its peak power
  /// (activity = 1.0 reproduces Fig. 2's peak-draw condition).  `activity`
  /// must be a finite value in [0,1]; anything else throws wsp::Error.
  PdnReport solve_uniform(double activity = 1.0);

  /// Solves with an explicit per-tile power vector (watts, indexed by
  /// TileGrid::index_of) — used for workload-dependent power maps.  Every
  /// entry must be finite and non-negative (throws wsp::Error otherwise).
  /// Results are history-independent: each solve re-seeds the cached grid
  /// to the fresh cold-start state, so only the stencil/hierarchy setup is
  /// amortized, never the numerics.
  PdnReport solve(const std::vector<double>& tile_power_w);

  /// Solves many per-tile power maps against the one cached topology in a
  /// single batched call, fanning independent right-hand sides over the
  /// exec pool (ResistiveGrid::solve_batch).  Reports are bit-identical to
  /// calling solve() on each map in order, at any thread count.  Requires
  /// LoadModel::ConstantCurrent (the constant-power outer iteration couples
  /// sinks to its own solution and cannot batch).  Power maps face the same
  /// preconditions as solve().
  std::vector<PdnReport> solve_batch(
      const std::vector<std::vector<double>>& tile_power_maps);

  /// Warm-started batch solve — the epoch-coupling seam.  Like
  /// solve_batch(), but each map's solver state is seeded from (and the
  /// converged solution written back into) `seeds[m]`, a caller-owned
  /// buffer of node_count() voltages persisted across calls: an epoch
  /// driver re-solving a slowly drifting power map starts from last
  /// epoch's solution and converges in a fraction of the cold-start
  /// V-cycles.  An empty seeds[m] is cold-started (zeros) and resized;
  /// any other length throws wsp::Error.  `seeds.size()` must equal
  /// `tile_power_maps.size()`.  stats_out, when non-null, receives the
  /// per-map solver stats (iteration counts for warm-vs-cold accounting).
  std::vector<PdnReport> solve_batch_warm(
      const std::vector<std::vector<double>>& tile_power_maps,
      std::vector<std::vector<double>>& seeds,
      std::vector<SolveStats>* stats_out = nullptr);

  /// Solver nodes per plane solve — the seed-buffer length for
  /// solve_batch_warm.
  std::size_t node_count() const { return grid_.node_count(); }

  /// Loop (VDD+GND) sheet resistance after slotting derate, ohm/sq.
  double loop_sheet_resistance() const;

  /// Voltage profile along the horizontal mid-line of the wafer: one entry
  /// per tile column.  This is the Fig. 2 edge-to-center-to-edge curve.
  static std::vector<double> midline_profile(const PdnReport& report,
                                             const TileGrid& grid);

  /// Mean supply voltage at each distance-to-edge ring (index = tile rings
  /// from the boundary inward).  Shows droop vs distance from edge.
  static std::vector<double> ring_profile(const PdnReport& report,
                                          const TileGrid& grid);

  const SystemConfig& config() const { return config_; }
  const WaferPdnOptions& options() const { return options_; }

  /// Binds wafer-level PDN metrics into `registry` ("pdn." namespace):
  /// solver counters/gauges from the underlying ResistiveGrid plus report
  /// gauges (pdn.min_supply_v, pdn.efficiency, pdn.plane_loss_w,
  /// pdn.ldo_loss_w, pdn.tiles_out_of_regulation), refreshed per solve.
  /// Pass nullptr to unbind.  The registry must outlive the WaferPdn.
  void bind_metrics(obs::MetricsRegistry* registry) {
    metrics_ = registry;
    grid_.bind_metrics(registry);
  }

 private:
  SystemConfig config_;
  WaferPdnOptions options_;
  Ldo ldo_;
  obs::MetricsRegistry* metrics_ = nullptr;
  // The plane model, built once: topology (conductances, Dirichlet edges)
  // never changes after construction, so the hoisted stencil and any
  // multigrid hierarchy survive for the WaferPdn's whole lifetime.
  ResistiveGrid grid_;
  std::vector<double> sink_scratch_;  // node sinks staged per solve

  ResistiveGrid build_grid() const;
  /// Per-tile currents for a power map under ConstantCurrent (LDO
  /// pass-through plus quiescent draw).
  std::vector<double> tile_currents(
      const std::vector<double>& tile_power_w) const;
  /// Scatters per-tile currents into per-node sinks (k x k nodes/tile).
  void scatter_sinks(const std::vector<double>& tile_current,
                     std::vector<double>& node_sink) const;
  PdnReport extract_report(std::span<const double> node_v,
                           std::span<const double> node_sink,
                           const std::vector<double>& tile_power_w,
                           bool converged) const;
};

}  // namespace wsp::pdn
