// Discretised resistive power-plane solver.
//
// The Si-IF substrate dedicates its bottom two metal layers to power: one
// VDD plane and one ground plane, each a 2 um-thick slotted copper sheet
// (Sec. VIII).  Power enters at the wafer edge (Sec. III) and every tile
// draws load current through its LDO.  IR droop across the planes is what
// produces the paper's Fig. 2 profile: 2.5 V at the edge falling to about
// 1.4 V at the center of the wafer at peak draw.
//
// This class solves the nodal equations of a rectangular resistor grid with
// Dirichlet (fixed-voltage) nodes and nodal current sinks, using red-black
// (checkerboard-ordered) successive over-relaxation.  Nodes of one color
// only ever read the other color's values within a half-sweep, so the two
// half-sweeps parallelise over the wsp::exec pool while staying bit-identical
// for every thread count.  The loop-invariant per-node work (neighbour
// indices, conductance sums) is hoisted into a stencil built once per
// topology change.  It is deliberately self-contained so it can also model
// other planes (e.g. the thermal heat-spreader model).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "wsp/obs/metrics.hpp"

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::pdn {

/// Result of a grid solve.
struct SolveStats {
  int iterations = 0;     ///< SOR sweeps executed
  /// Max |Kirchhoff current-law residual| over non-Dirichlet nodes at exit,
  /// amperes: how much current each nodal balance fails to conserve.
  double residual = 0.0;
  /// Max relaxed voltage update at the final sweep, volts — the quantity
  /// `tol` is compared against.
  double max_delta_v = 0.0;
  bool converged = false;
};

/// Rectangular grid of nodes connected by resistors to their 4-neighbours.
///
/// Node (x, y) has index y*width+x.  Conductances are per-edge; current
/// sinks draw current out of nodes; Dirichlet nodes are held at a fixed
/// voltage (the edge supply).  Units: volts, amperes, siemens.
class ResistiveGrid {
 public:
  ResistiveGrid(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t node_count() const { return v_.size(); }

  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  /// Sets the conductance (siemens) of the edge between (x,y) and (x+1,y).
  void set_conductance_east(int x, int y, double siemens);
  /// Sets the conductance (siemens) of the edge between (x,y) and (x,y+1).
  void set_conductance_north(int x, int y, double siemens);

  /// Sets every horizontal edge to `gx` and every vertical edge to `gy`.
  void fill_conductances(double gx, double gy);

  /// Fixes node (x,y) at `volts` (a supply connection).
  void set_dirichlet(int x, int y, double volts);
  /// Removes a previously-set Dirichlet constraint.
  void clear_dirichlet(int x, int y);
  bool is_dirichlet(int x, int y) const { return dirichlet_[index(x, y)]; }

  /// Sets the current (amperes) drawn *out of* node (x,y) — a load.
  /// Negative values inject current.
  void set_current_sink(int x, int y, double amperes);
  double current_sink(int x, int y) const { return sink_[index(x, y)]; }

  /// Connects node (x,y) to a fixed reference `v_ref` through `siemens`
  /// (a shunt).  Electrically: a load to ground; thermally (the solver
  /// doubles as a heat-spreader model): the vertical path to the cold
  /// plate at ambient temperature.
  void set_shunt(int x, int y, double siemens, double v_ref);

  /// Chebyshev-optimal over-relaxation factor for a width x height grid:
  /// omega* = 2 / (1 + sqrt(1 - rho_J^2)) with the 5-point Jacobi spectral
  /// radius estimate rho_J = (cos(pi/width) + cos(pi/height)) / 2.
  static double chebyshev_omega(int width, int height);

  /// Solves the nodal system by red-black SOR on the shared exec pool.
  /// `tol` is the max per-node relaxed voltage change that counts as
  /// converged; `omega` <= 0 selects chebyshev_omega(width, height).
  /// The previous solution (if any) seeds the iteration.  Bit-identical
  /// for every thread count.
  SolveStats solve(double tol = 1e-7, int max_iterations = 200000,
                   double omega = 0.0);

  /// Binds solver metrics into `registry` under `prefix`: counters
  /// <prefix>solves / <prefix>sweeps / <prefix>converged and gauges
  /// <prefix>residual_a / <prefix>max_delta_v, updated at the end of every
  /// solve().  Pass nullptr to unbind (the default state: no recording).
  /// The registry must outlive the grid.
  void bind_metrics(obs::MetricsRegistry* registry,
                    const std::string& prefix = "pdn.sor.");

  double voltage(int x, int y) const { return v_[index(x, y)]; }
  const std::vector<double>& voltages() const { return v_; }

  /// Total current delivered through all Dirichlet nodes (should equal the
  /// sum of sinks at convergence — used as a solver sanity check).
  double total_supply_current() const;

  /// Resistive power dissipated in the grid edges, watts.
  double dissipated_power() const;

  /// Checkpoint hooks (wsp::ckpt): conductances, sinks, shunts, Dirichlet
  /// constraints and the solution vector round-trip (the last solution
  /// seeds the next solve, so restoring it keeps resumed iteration counts
  /// identical).  The hoisted stencil is rebuilt on demand, not stored.
  /// Metric bindings are untouched by a load.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  // Loop-invariant per-node solve data, hoisted out of the sweep: flattened
  // neighbour indices and conductances (absent neighbours alias the node
  // itself with zero conductance), the shunt injection, and the inverse
  // diagonal.  Split by checkerboard color; rebuilt on topology change.
  struct StencilNode {
    std::uint32_t node;
    std::uint32_t nbr[4];  // W, E, S, N neighbour indices
    double g[4];           // matching edge conductances (0 when absent)
    double shunt_flow;     // shunt_g * shunt_v
    double gsum;           // diagonal: sum of g[] + shunt_g
    double inv_gsum;
  };

  int width_;
  int height_;
  std::vector<double> g_east_;   // (width-1) x height edges
  std::vector<double> g_north_;  // width x (height-1) edges
  std::vector<double> sink_;     // amperes out of each node
  std::vector<double> shunt_g_;  // siemens to the shunt reference
  std::vector<double> shunt_v_;  // shunt reference voltage
  std::vector<char> dirichlet_;
  std::vector<double> v_;
  std::vector<StencilNode> stencil_[2];  // [0] = red (x+y even), [1] = black
  bool stencil_valid_ = false;

  // Registry-backed solver metrics (all null while unbound).
  struct Metrics {
    obs::Counter* solves = nullptr;
    obs::Counter* sweeps = nullptr;     ///< SOR iterations, both colors
    obs::Counter* converged = nullptr;  ///< solves that met tol
    obs::Gauge* residual_a = nullptr;   ///< last solve's max KCL residual
    obs::Gauge* max_delta_v = nullptr;  ///< last solve's final update
  } metrics_;

  void rebuild_stencil();
  double sweep_color(const std::vector<StencilNode>& nodes, double omega);
  double max_kcl_residual() const;

  std::size_t east_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_ - 1) +
           static_cast<std::size_t>(x);
  }
  std::size_t north_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
};

}  // namespace wsp::pdn
