// Discretised resistive power-plane solver.
//
// The Si-IF substrate dedicates its bottom two metal layers to power: one
// VDD plane and one ground plane, each a 2 um-thick slotted copper sheet
// (Sec. VIII).  Power enters at the wafer edge (Sec. III) and every tile
// draws load current through its LDO.  IR droop across the planes is what
// produces the paper's Fig. 2 profile: 2.5 V at the edge falling to about
// 1.4 V at the center of the wafer at peak draw.
//
// This class solves the nodal equations of a rectangular resistor grid with
// Dirichlet (fixed-voltage) nodes and nodal current sinks.  Two solvers are
// available behind SolverConfig: red-black (checkerboard-ordered)
// successive over-relaxation, and a geometric multigrid V-cycle (see
// multigrid.hpp) that uses the same red-black sweep as its smoother at
// every level.  Nodes of one color only ever read the other color's values
// within a half-sweep, so the two half-sweeps parallelise over the
// wsp::exec pool while staying bit-identical for every thread count.  The
// loop-invariant per-node work (neighbour indices, conductance sums) is
// hoisted into a stencil built once per topology change, and the multigrid
// hierarchy is cached under the same invalidation rule — sink updates
// never touch either, which is what makes solve_batch() able to amortize
// one setup across many right-hand sides.  It is deliberately
// self-contained so it can also model other planes (e.g. the thermal
// heat-spreader model).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "wsp/obs/metrics.hpp"

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::pdn {

class MultigridHierarchy;

/// Result of a grid solve.
struct SolveStats {
  int iterations = 0;     ///< SOR sweeps, or multigrid V-cycles, executed
  /// Max |Kirchhoff current-law residual| over non-Dirichlet nodes at exit,
  /// amperes: how much current each nodal balance fails to conserve.
  double residual = 0.0;
  /// Max relaxed voltage update at the final sweep (SOR) or over the final
  /// V-cycle (multigrid), volts — the quantity `tol` is compared against.
  double max_delta_v = 0.0;
  bool converged = false;
  /// Total smoothing/relaxation work in units of one full fine-grid sweep
  /// (red + black): equals `iterations` for SOR; for multigrid it folds
  /// every level's sweeps, residual and transfer passes in, weighted by
  /// level size.  The cross-method cost currency.
  double fine_sweep_equivalents = 0.0;
};

/// Which algorithm ResistiveGrid::solve(const SolverConfig&) runs.
enum class SolverMethod {
  Sor,        ///< red-black SOR with Chebyshev-optimal omega
  Multigrid,  ///< geometric V-cycles with red-black smoothing
};

/// Solver selection and tuning, plumbed from WaferPdnOptions /
/// ThermalOptions down to the grid.  Defaults reproduce the historical
/// `solve(tol, max_iterations, omega)` behaviour exactly.
struct SolverConfig {
  SolverMethod method = SolverMethod::Sor;
  /// Convergence threshold on the max per-node update, volts.
  double tol = 1e-7;
  /// SOR only: sweep cap.
  int max_iterations = 200000;
  /// SOR only: over-relaxation factor; <= 0 selects chebyshev_omega().
  double omega = 0.0;
  /// Multigrid only: V-cycle cap.  Convergence is grid-size-independent,
  /// so a converged solve takes ~6-10 cycles regardless of resolution.
  int cycles = 60;
  /// Multigrid only: red-black smoothing sweeps before/after coarse-grid
  /// correction at every level.  V(1,1) with a mild over-relaxation
  /// measured fastest to converge across 16x16-128x128 wafer planes (the
  /// per-cycle contraction is ~0.04, so extra sweeps per cycle buy less
  /// than they cost).
  int pre_smooth = 1;
  int post_smooth = 1;
  /// Multigrid only: smoothing over-relaxation.  Unlike the standalone SOR
  /// omega this stays near 1 — the smoother's job is killing high-frequency
  /// error, not propagating information across the grid.
  double smooth_omega = 1.10;
  /// Multigrid only: start with a full-multigrid bootstrap — restrict the
  /// seed's residual to the coarsest level, solve there, and interpolate
  /// back up with one V-cycle per level.  Costs a fraction of a V-cycle
  /// and typically saves 2-3 of them; a warm seed just shrinks the
  /// bootstrap correction, so warm-start batches still benefit.
  bool fmg = true;
  /// Multigrid only: stop coarsening once a level has at most this many
  /// nodes and solve it with a dense Cholesky factorization instead.
  int coarsest_nodes = 64;
};

/// One right-hand side of a batched solve: a per-node sink vector and the
/// caller-owned voltage buffer it solves into (seeded with the initial
/// guess; Dirichlet entries are overwritten from the grid's fixed values).
/// Both spans must cover node_count() entries.
struct RhsView {
  std::span<const double> sink;  ///< amperes out of each node
  std::span<double> v;           ///< in: seed, out: solution
};

/// Rectangular grid of nodes connected by resistors to their 4-neighbours.
///
/// Node (x, y) has index y*width+x.  Conductances are per-edge; current
/// sinks draw current out of nodes; Dirichlet nodes are held at a fixed
/// voltage (the edge supply).  Units: volts, amperes, siemens.
class ResistiveGrid {
 public:
  ResistiveGrid(int width, int height);
  // Out-of-line so the cached MultigridHierarchy can stay an incomplete
  // type here; moves transfer the caches, copies are disabled.
  ~ResistiveGrid();
  ResistiveGrid(ResistiveGrid&&) noexcept;
  ResistiveGrid& operator=(ResistiveGrid&&) noexcept;

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t node_count() const { return v_.size(); }

  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  /// Sets the conductance (siemens) of the edge between (x,y) and (x+1,y).
  void set_conductance_east(int x, int y, double siemens);
  /// Sets the conductance (siemens) of the edge between (x,y) and (x,y+1).
  void set_conductance_north(int x, int y, double siemens);

  /// Sets every horizontal edge to `gx` and every vertical edge to `gy`.
  void fill_conductances(double gx, double gy);

  /// Fixes node (x,y) at `volts` (a supply connection).
  void set_dirichlet(int x, int y, double volts);
  /// Removes a previously-set Dirichlet constraint.
  void clear_dirichlet(int x, int y);
  bool is_dirichlet(int x, int y) const { return dirichlet_[index(x, y)]; }

  /// Sets the current (amperes) drawn *out of* node (x,y) — a load.
  /// Negative values inject current.
  void set_current_sink(int x, int y, double amperes);
  double current_sink(int x, int y) const { return sink_[index(x, y)]; }

  /// Replaces the whole sink vector in one call (node_count() entries,
  /// amperes out of each node, indexed by index()).  Like
  /// set_current_sink, this touches only the right-hand side: the hoisted
  /// stencil and any cached multigrid hierarchy survive, so per-solve load
  /// updates (power maps, DSE sweep points) stay amortized.
  void set_current_sinks(const std::vector<double>& amperes);
  const std::vector<double>& current_sinks() const { return sink_; }

  /// Connects node (x,y) to a fixed reference `v_ref` through `siemens`
  /// (a shunt).  Electrically: a load to ground; thermally (the solver
  /// doubles as a heat-spreader model): the vertical path to the cold
  /// plate at ambient temperature.
  void set_shunt(int x, int y, double siemens, double v_ref);

  /// Chebyshev-optimal over-relaxation factor for a width x height grid:
  /// omega* = 2 / (1 + sqrt(1 - rho_J^2)) with the 5-point Jacobi spectral
  /// radius estimate rho_J = (cos(pi/width) + cos(pi/height)) / 2.
  static double chebyshev_omega(int width, int height);

  /// Solves the nodal system by red-black SOR on the shared exec pool.
  /// `tol` is the max per-node relaxed voltage change that counts as
  /// converged; `omega` <= 0 selects chebyshev_omega(width, height).
  /// The previous solution (if any) seeds the iteration.  Bit-identical
  /// for every thread count.
  SolveStats solve(double tol = 1e-7, int max_iterations = 200000,
                   double omega = 0.0);

  /// Solves with the configured method.  SolverMethod::Multigrid builds
  /// (and caches) a MultigridHierarchy from the current topology; the
  /// cache is invalidated by conductance/Dirichlet/shunt changes but
  /// survives sink updates, so repeated solves against one topology pay
  /// the setup cost once.  Bit-identical for every thread count.
  SolveStats solve(const SolverConfig& config);

  /// Solves many independent right-hand sides against this one topology,
  /// fanning them across the exec pool (one hierarchy/stencil amortized
  /// over the whole batch).  Each rhs[i].v is seeded by the caller (its
  /// Dirichlet entries are reset from the grid's fixed values first) and
  /// holds that solve's solution on return; stats[i] reports it.  The
  /// grid's own solution vector and sinks are untouched.  Results are
  /// bit-identical for every thread count and equal to solving each RHS
  /// sequentially with solve(config) from the same seed.
  /// Requires stats.size() == rhs.size().
  void solve_batch(std::span<const RhsView> rhs, std::span<SolveStats> stats,
                   const SolverConfig& config = {});

  /// Binds solver metrics into `registry` under `prefix`: counters
  /// <prefix>solves / <prefix>sweeps / <prefix>converged and gauges
  /// <prefix>residual_a / <prefix>max_delta_v, updated at the end of every
  /// solve().  Pass nullptr to unbind (the default state: no recording).
  /// The registry must outlive the grid.
  void bind_metrics(obs::MetricsRegistry* registry,
                    const std::string& prefix = "pdn.sor.");

  double voltage(int x, int y) const { return v_[index(x, y)]; }
  const std::vector<double>& voltages() const { return v_; }

  /// Resets every non-Dirichlet node to `volts` (Dirichlet nodes keep their
  /// fixed values).  Gives a freshly-constructed-grid seed without paying
  /// for a rebuild: the stencil, hierarchy and sinks all survive.  Callers
  /// that want history-independent solves against a cached grid (WaferPdn,
  /// WaferThermal) call this before each solve.
  void reset_voltages(double volts = 0.0);

  /// Total current delivered through all Dirichlet nodes (should equal the
  /// sum of sinks at convergence — used as a solver sanity check).  The
  /// span overload evaluates an external solution/sink pair (a solve_batch
  /// result) against this grid's topology.
  double total_supply_current() const {
    return total_supply_current(v_, sink_);
  }
  double total_supply_current(std::span<const double> v,
                              std::span<const double> sink) const;

  /// Resistive power dissipated in the grid edges, watts.
  double dissipated_power() const { return dissipated_power(v_); }
  double dissipated_power(std::span<const double> v) const;

  /// Checkpoint hooks (wsp::ckpt): conductances, sinks, shunts, Dirichlet
  /// constraints and the solution vector round-trip (the last solution
  /// seeds the next solve, so restoring it keeps resumed iteration counts
  /// identical).  The hoisted stencil is rebuilt on demand, not stored.
  /// Metric bindings are untouched by a load.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  // Loop-invariant per-node solve data, hoisted out of the sweep: flattened
  // neighbour indices and conductances (absent neighbours alias the node
  // itself with zero conductance), the shunt injection, and the inverse
  // diagonal.  Split by checkerboard color; rebuilt on topology change.
  // Public so MultigridHierarchy levels share the exact sweep kernel (the
  // determinism argument holds once, for every level).
 public:
  struct StencilNode {
    std::uint32_t node;
    std::uint32_t nbr[4];  // W, E, S, N neighbour indices
    double g[4];           // matching edge conductances (0 when absent)
    double shunt_flow;     // shunt_g * shunt_v
    double gsum;           // diagonal: sum of g[] + shunt_g
    double inv_gsum;
  };

  /// One red-black half-sweep of SOR over `nodes`, updating `v` in place
  /// against `sink`; returns the max |relaxed update|.  Runs on the shared
  /// exec pool (bit-identical at any thread count; inline when nested
  /// inside a pool worker, which is how solve_batch keeps per-RHS tasks
  /// independent).  Shared by the standalone SOR solver and every
  /// multigrid level's smoother.
  static double sweep_color(const std::vector<StencilNode>& nodes,
                            double omega, double* v, const double* sink);

  /// sweep_color plus a free residual: when this runs as the *second*
  /// color of a sweep, every neighbour is final, so each node's KCL
  /// residual is a by-product of the update already in registers and gets
  /// stored to `r`.  The multigrid cycle uses it to skip half of every
  /// explicit residual pass.
  static double sweep_color_residual(const std::vector<StencilNode>& nodes,
                                     double omega, double* v,
                                     const double* sink, double* r);

 private:
  int width_;
  int height_;
  std::vector<double> g_east_;   // (width-1) x height edges
  std::vector<double> g_north_;  // width x (height-1) edges
  std::vector<double> sink_;     // amperes out of each node
  std::vector<double> shunt_g_;  // siemens to the shunt reference
  std::vector<double> shunt_v_;  // shunt reference voltage
  std::vector<char> dirichlet_;
  std::vector<double> v_;
  std::vector<StencilNode> stencil_[2];  // [0] = red (x+y even), [1] = black
  bool stencil_valid_ = false;
  // Cached multigrid hierarchy: built on first Multigrid solve, reused
  // until the topology changes (same invalidation sites as the stencil;
  // sink updates preserve it).
  std::unique_ptr<MultigridHierarchy> hierarchy_;

  // Registry-backed solver metrics (all null while unbound).
  struct Metrics {
    obs::Counter* solves = nullptr;
    obs::Counter* sweeps = nullptr;     ///< SOR iterations, both colors
    obs::Counter* converged = nullptr;  ///< solves that met tol
    obs::Gauge* residual_a = nullptr;   ///< last solve's max KCL residual
    obs::Gauge* max_delta_v = nullptr;  ///< last solve's final update
  } metrics_;

  void rebuild_stencil();
  // Out-of-line: resets hierarchy_, which is incomplete here.
  void invalidate_topology();
  /// Stencil + hierarchy brought up to date for the current topology
  /// (hierarchy only when `config` asks for Multigrid).
  void prepare_solvers(const SolverConfig& config);
  SolveStats solve_sor_on(std::span<double> v, std::span<const double> sink,
                          double tol, int max_iterations, double omega);
  SolveStats solve_multigrid_on(std::span<double> v,
                                std::span<const double> sink,
                                const SolverConfig& config);
  void record_solve(const SolveStats& stats);
  double max_kcl_residual() const { return max_kcl_residual(v_, sink_); }
  double max_kcl_residual(std::span<const double> v,
                          std::span<const double> sink) const;

  friend class MultigridHierarchy;

  std::size_t east_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_ - 1) +
           static_cast<std::size_t>(x);
  }
  std::size_t north_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
};

}  // namespace wsp::pdn
