// Discretised resistive power-plane solver.
//
// The Si-IF substrate dedicates its bottom two metal layers to power: one
// VDD plane and one ground plane, each a 2 um-thick slotted copper sheet
// (Sec. VIII).  Power enters at the wafer edge (Sec. III) and every tile
// draws load current through its LDO.  IR droop across the planes is what
// produces the paper's Fig. 2 profile: 2.5 V at the edge falling to about
// 1.4 V at the center of the wafer at peak draw.
//
// This class solves the nodal equations of a rectangular resistor grid with
// Dirichlet (fixed-voltage) nodes and nodal current sinks, using successive
// over-relaxation.  It is deliberately self-contained so it can also model
// other planes (e.g. a clock mesh) if needed.
#pragma once

#include <cstddef>
#include <vector>

namespace wsp::pdn {

/// Result of a grid solve.
struct SolveStats {
  int iterations = 0;        ///< SOR sweeps executed
  double residual = 0.0;     ///< max |node update| at the final sweep, volts
  bool converged = false;
};

/// Rectangular grid of nodes connected by resistors to their 4-neighbours.
///
/// Node (x, y) has index y*width+x.  Conductances are per-edge; current
/// sinks draw current out of nodes; Dirichlet nodes are held at a fixed
/// voltage (the edge supply).  Units: volts, amperes, siemens.
class ResistiveGrid {
 public:
  ResistiveGrid(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t node_count() const { return v_.size(); }

  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  /// Sets the conductance (siemens) of the edge between (x,y) and (x+1,y).
  void set_conductance_east(int x, int y, double siemens);
  /// Sets the conductance (siemens) of the edge between (x,y) and (x,y+1).
  void set_conductance_north(int x, int y, double siemens);

  /// Sets every horizontal edge to `gx` and every vertical edge to `gy`.
  void fill_conductances(double gx, double gy);

  /// Fixes node (x,y) at `volts` (a supply connection).
  void set_dirichlet(int x, int y, double volts);
  /// Removes a previously-set Dirichlet constraint.
  void clear_dirichlet(int x, int y);
  bool is_dirichlet(int x, int y) const { return dirichlet_[index(x, y)]; }

  /// Sets the current (amperes) drawn *out of* node (x,y) — a load.
  /// Negative values inject current.
  void set_current_sink(int x, int y, double amperes);
  double current_sink(int x, int y) const { return sink_[index(x, y)]; }

  /// Connects node (x,y) to a fixed reference `v_ref` through `siemens`
  /// (a shunt).  Electrically: a load to ground; thermally (the solver
  /// doubles as a heat-spreader model): the vertical path to the cold
  /// plate at ambient temperature.
  void set_shunt(int x, int y, double siemens, double v_ref);

  /// Solves the nodal system by SOR.  `omega` in (1,2) accelerates
  /// convergence; `tol` is the max per-node voltage change that counts as
  /// converged.  The previous solution (if any) seeds the iteration.
  SolveStats solve(double tol = 1e-7, int max_iterations = 200000,
                   double omega = 1.9);

  double voltage(int x, int y) const { return v_[index(x, y)]; }
  const std::vector<double>& voltages() const { return v_; }

  /// Total current delivered through all Dirichlet nodes (should equal the
  /// sum of sinks at convergence — used as a solver sanity check).
  double total_supply_current() const;

  /// Resistive power dissipated in the grid edges, watts.
  double dissipated_power() const;

 private:
  int width_;
  int height_;
  std::vector<double> g_east_;   // (width-1) x height edges
  std::vector<double> g_north_;  // width x (height-1) edges
  std::vector<double> sink_;     // amperes out of each node
  std::vector<double> shunt_g_;  // siemens to the shunt reference
  std::vector<double> shunt_v_;  // shunt reference voltage
  std::vector<char> dirichlet_;
  std::vector<double> v_;

  std::size_t east_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_ - 1) +
           static_cast<std::size_t>(x);
  }
  std::size_t north_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
};

}  // namespace wsp::pdn
