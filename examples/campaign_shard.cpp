// Multi-process Monte Carlo campaign sharding over wsp::ckpt files.
//
// A big degradation campaign does not have to live in one process: trial t
// is a pure function of (options, seed + t), so any partition of the trial
// range across worker processes reproduces the single-process reports bit
// for bit.  Each worker runs its slice, optionally checkpointing it
// crash-safely, and writes a "CAMP" partial file; a final merge invocation
// stitches the partials back into trial order (fingerprint and range
// coverage validated), folds the metrics, and emits the same RunReport an
// uninterrupted single-process run would.
//
//   # run 12 trials split across 3 workers (any order, any machines
//   # sharing a filesystem), then merge:
//   ./campaign_shard --trials 12 --shard 0 --num-shards 3 --out s0.wsp
//   ./campaign_shard --trials 12 --shard 1 --num-shards 3 --out s1.wsp
//   ./campaign_shard --trials 12 --shard 2 --num-shards 3 --out s2.wsp
//   ./campaign_shard --trials 12 --merge s0.wsp s1.wsp s2.wsp
//
//   # the single-process reference for diffing:
//   ./campaign_shard --trials 12 --single
//
// Add --ckpt FILE to a worker and its slice snapshots after every trial —
// a SIGKILLed worker rerun with the same command line resumes instead of
// restarting.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/fleet/worker.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/resilience/campaign.hpp"

namespace {

wsp::resilience::CampaignOptions campaign_options() {
  using namespace wsp;
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 7;
  o.run_cycles = 2000;
  o.fault_horizon = 1500;
  o.injection_rate = 0.02;
  return o;
}

void emit(const std::vector<wsp::resilience::DegradationReport>& reports,
          const char* how) {
  using namespace wsp;
  const resilience::CampaignSummary summary = resilience::summarize(reports);
  std::printf("%s: %d trials | mean usable fraction %.3f | mean "
              "reachability %.2f%% | SSI %d/%d | drained %d/%d\n",
              how, summary.trials, summary.mean_final_usable_fraction,
              summary.mean_pair_reachability_pct,
              summary.single_system_image_survived, summary.trials,
              summary.fully_drained, summary.trials);
  obs::MetricsRegistry registry;
  resilience::publish_metrics(reports, registry);
  obs::RunReport report("campaign_shard");
  report.add_scalar("summary", "mean_final_usable_fraction",
                    summary.mean_final_usable_fraction);
  report.add_scalar("summary", "mean_pair_reachability_pct",
                    summary.mean_pair_reachability_pct);
  report.add_scalar("summary", "lost_per_issued", summary.lost_per_issued);
  report.add_metrics("campaign", registry);
  const std::string path = report.write_default();
  if (!path.empty()) std::printf("run report: %s\n", path.c_str());
}

int usage() {
  std::fprintf(
      stderr,
      "usage: campaign_shard --trials N --shard I --num-shards S --out FILE"
      " [--ckpt FILE]\n"
      "       campaign_shard --trials N --merge FILE...\n"
      "       campaign_shard --trials N --single\n"
      "       campaign_shard --worker <generated argv tail>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsp;
  using namespace wsp::resilience;

  // Fleet worker mode: a wsp::fleet dispatcher can drive this binary as its
  // shard worker (same campaign options as fleet_campaign — the options
  // fingerprint in every CAMP file keeps the two honest).
  if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
    fleet::WorkerShardArgs args;
    try {
      args = fleet::parse_worker_argv(
          std::vector<std::string>(argv + 2, argv + argc));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "campaign_shard worker: %s\n", e.what());
      return fleet::kWorkerExitBadArgs;
    }
    const DegradationCampaign campaign(campaign_options());
    return fleet::run_worker(campaign, args);
  }

  int trials = 0, shard = -1, num_shards = 0;
  bool merge = false, single = false;
  std::string out, ckpt_path;
  std::vector<std::string> merge_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trials" && i + 1 < argc) trials = std::atoi(argv[++i]);
    else if (arg == "--shard" && i + 1 < argc) shard = std::atoi(argv[++i]);
    else if (arg == "--num-shards" && i + 1 < argc)
      num_shards = std::atoi(argv[++i]);
    else if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--ckpt" && i + 1 < argc) ckpt_path = argv[++i];
    else if (arg == "--merge") merge = true;
    else if (arg == "--single") single = true;
    else if (merge) merge_files.push_back(arg);
    else return usage();
  }
  if (trials < 1) return usage();

  const DegradationCampaign campaign(campaign_options());
  const std::uint32_t fp = campaign.options_fingerprint();

  try {
    if (single) {
      emit(campaign.run_trials(trials), "single-process");
      return 0;
    }

    if (merge) {
      if (merge_files.empty()) return usage();
      std::vector<CampaignReportsFile> shards;
      for (const std::string& path : merge_files)
        shards.push_back(load_campaign_reports(path));
      emit(merge_campaign_reports(std::move(shards), fp), "merged shards");
      return 0;
    }

    if (shard < 0 || num_shards < 1 || shard >= num_shards || out.empty())
      return usage();
    // Contiguous block partition: shard i owns [i*T/S, (i+1)*T/S).
    const int first = shard * trials / num_shards;
    const int count = (shard + 1) * trials / num_shards - first;
    if (count == 0) {
      std::printf("shard %d/%d owns no trials\n", shard, num_shards);
      return 0;
    }
    std::vector<DegradationReport> reports;
    if (!ckpt_path.empty()) {
      CampaignCheckpointOptions ck;
      ck.path = ckpt_path;
      ck.every_trials = 1;
      reports =
          campaign.run_trial_range_checkpointed(first, count, trials, ck);
    } else {
      reports = campaign.run_trial_range(first, count);
    }
    save_campaign_reports(out, {fp, trials, first, std::move(reports)});
    std::printf("shard %d/%d: trials [%d, %d) -> %s\n", shard, num_shards,
                first, first + count, out.c_str());
    return 0;
  } catch (const ckpt::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
