// Quickstart: a ten-minute tour of the library.
//
// Builds the paper's 2048-chiplet configuration, inspects the derived
// Table-I figures, solves the power-delivery droop, sets up the forwarded
// clock, checks network resiliency against a random fault map, and runs a
// small BFS on a simulated multi-tile system.
//
// Observability: run with WSP_TRACE=1 to record simulator spans into
// TRACE_quickstart.json (open in https://ui.perfetto.dev) and write a
// RUNREPORT_quickstart.json with the PDN solver metrics.
//
//   ./quickstart
#include <cstdio>
#include <cstdlib>

#include "wsp/clock/forwarding.hpp"
#include "wsp/noc/connectivity.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/obs/trace.hpp"
#include "wsp/pdn/wafer_pdn.hpp"
#include "wsp/workloads/graph_apps.hpp"

int main() {
  using namespace wsp;

  const obs::ScopedTrace trace("quickstart");
  obs::MetricsRegistry registry;

  // 1. The system configuration.  Every Table-I quantity is derived.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  std::printf("waferscale prototype: %d tiles, %d chiplets, %d cores\n",
              cfg.total_tiles(), cfg.total_chiplets(), cfg.total_cores());
  std::printf("  %.1f TOPS | %.3f TB/s shared-memory B/W | %.2f TBps "
              "network B/W | %.0f W peak\n",
              cfg.compute_throughput_ops() / 1e12,
              cfg.shared_memory_bandwidth_bytes_per_s() / 1e12,
              cfg.network_bandwidth_bytes_per_s() / 1e12,
              cfg.total_peak_power_w());

  // 2. Power delivery: edge supply at 2.5 V, LDO per tile (Sec. III).
  pdn::WaferPdn pdn(cfg, {});
  pdn.bind_metrics(&registry);
  const pdn::PdnReport power = pdn.solve_uniform(1.0);
  std::printf("PDN at peak draw: edge %.2f V -> center %.2f V, %.0f A, "
              "all tiles regulated: %s\n",
              power.max_supply_v, power.min_supply_v,
              power.total_supply_current_a,
              power.tiles_out_of_regulation == 0 ? "yes" : "NO");

  // 3. Clocking: one edge tile generates, everyone else forwards (Sec. IV).
  const FaultMap healthy(cfg.grid());
  const clock::ForwardingPlan clock_plan =
      clock::simulate_forwarding(healthy, {{0, 16}});
  std::printf("clock setup: %zu/%d tiles clocked, max forwarding depth %d "
              "hops\n",
              clock_plan.reached_count, cfg.total_tiles(),
              clock_plan.max_hops);

  // 4. Resiliency: what do 5 faulty chiplets cost (Fig. 6)?
  Rng rng(1);
  const FaultMap faults = FaultMap::random_with_count(cfg.grid(), 5, rng);
  const noc::DisconnectionStats census = noc::census_disconnection(faults);
  std::printf("with 5 faults: %.1f%% pairs lose a single network, %.2f%% "
              "lose both (dual-DoR design)\n",
              census.single_roundtrip_pct(), census.dual_pct());

  // 5. Run BFS on a simulated 4x4-tile section (Sec. II validation).
  const SystemConfig small = SystemConfig::reduced(4, 4);
  const workloads::Graph g = workloads::make_grid_graph(16, 16);
  const workloads::GraphAppResult bfs =
      workloads::run_bfs(small, FaultMap(small.grid()), g, 0);
  const bool ok = bfs.distance == workloads::reference_bfs(g, 0);
  std::printf("BFS on 4x4 tiles: %llu cycles, %llu messages, verified: %s\n",
              static_cast<unsigned long long>(bfs.stats.makespan),
              static_cast<unsigned long long>(bfs.stats.messages_sent),
              ok ? "yes" : "NO");

  // Machine-readable run report (emitted when tracing is on or an explicit
  // output path is requested, so plain runs stay artifact-free).
  if (trace.active() || std::getenv("WSP_RUNREPORT_FILE") != nullptr) {
    obs::RunReport report("quickstart");
    report.add_scalar("pdn", "min_supply_v", power.min_supply_v);
    report.add_scalar("pdn", "total_supply_current_a",
                      power.total_supply_current_a);
    report.add_scalar("workloads", "bfs_makespan_cycles",
                      static_cast<double>(bfs.stats.makespan));
    report.add_metrics("pdn", registry);
    const std::string path = report.write_default();
    if (!path.empty()) std::printf("run report: %s\n", path.c_str());
  }
  return ok ? 0 : 1;
}
