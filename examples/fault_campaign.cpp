// Runtime fault-injection campaign, narrated.
//
// Replays a burst of runtime faults — tile deaths, a directed-link
// failure, an LDO brownout, a packet corruption — against a live 8x8
// wafer section while synthetic traffic runs, and walks through what each
// degradation layer did about it: NoC replan + timeout/retry, clock
// re-selection, PDN re-solve, and the post-burst re-bring-up.
//
// Observability: run with WSP_TRACE=1 to record campaign/NoC spans into
// TRACE_fault_campaign.json and write RUNREPORT_fault_campaign.json with
// the folded Monte Carlo metrics ("campaign." namespace).
//
//   ./fault_campaign
#include <cstdio>
#include <cstdlib>

#include "wsp/obs/report.hpp"
#include "wsp/obs/trace.hpp"
#include "wsp/resilience/campaign.hpp"

int main() {
  using namespace wsp;
  using namespace wsp::resilience;

  const obs::ScopedTrace trace("fault_campaign");

  CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 11;
  o.run_cycles = 3000;
  o.injection_rate = 0.02;

  FaultSchedule s;
  s.add({400, RuntimeFaultKind::TileDeath, {2, 2}, Direction::North});
  s.add({800, RuntimeFaultKind::LinkFailure, {4, 4}, Direction::East});
  s.add({1200, RuntimeFaultKind::LdoBrownout, {3, 5}, Direction::North});
  s.add({1600, RuntimeFaultKind::TileDeath, {5, 3}, Direction::North});
  s.add({2000, RuntimeFaultKind::PacketCorruption, {4, 2}, Direction::North});
  o.schedule = s;

  std::printf("== runtime fault campaign: 8x8 wafer section, %zu scheduled "
              "events, seed %llu ==\n\n",
              s.size(), static_cast<unsigned long long>(o.seed));

  const DegradationReport r = DegradationCampaign(o).run();

  std::printf("-- event log --\n");
  for (const EventOutcome& e : r.events) {
    std::printf("cycle %5llu  %-16s at (%d,%d)",
                static_cast<unsigned long long>(e.applied_cycle),
                to_string(e.notice.kind), e.notice.tile.x, e.notice.tile.y);
    if (e.notice.link)
      std::printf(" dir %s", to_string(*e.notice.link));
    std::printf("\n    usable %zu (-%zu)", e.usable_after, e.newly_unusable);
    if (e.clock_relatched || e.clock_orphaned)
      std::printf(" | clock: %d re-latched, %d orphaned", e.clock_relatched,
                  e.clock_orphaned);
    if (e.pdn_undervolted)
      std::printf(" | pdn: %d collateral under-voltage", e.pdn_undervolted);
    if (e.recovered)
      std::printf(" | in-flight traffic settled in %llu cycles",
                  static_cast<unsigned long long>(e.recovery_cycles));
    std::printf("\n");
  }

  std::printf("\n-- usable-tile trajectory --\n");
  for (const TrajectoryPoint& p : r.trajectory)
    if (p.cycle == 0 || p.usable_tiles != r.initial_usable)
      std::printf("  cycle %6llu: %zu usable\n",
                  static_cast<unsigned long long>(p.cycle), p.usable_tiles);

  const noc::NocStats& st = r.noc_stats;
  std::printf("\n-- NoC accounting over %llu cycles --\n",
              static_cast<unsigned long long>(r.total_cycles));
  std::printf("  issued %llu = completed %llu + lost %llu\n",
              static_cast<unsigned long long>(st.issued),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.lost));
  std::printf("  timeouts %llu = retries %llu + lost %llu | replans %llu | "
              "corrupted %llu | drained: %s\n",
              static_cast<unsigned long long>(st.timeouts),
              static_cast<unsigned long long>(st.retries),
              static_cast<unsigned long long>(st.lost),
              static_cast<unsigned long long>(st.replans),
              static_cast<unsigned long long>(st.corrupted),
              r.drained ? "yes" : "NO");

  std::printf("\n-- post-burst fabric --\n");
  std::printf("  usable tiles: %zu of %zu initially\n", r.final_usable,
              r.initial_usable);
  std::printf("  pair reachability: %.2f%% | single system image: %s\n",
              r.pair_reachability_pct,
              r.single_system_image ? "intact" : "LOST");
  if (r.rebringup)
    std::printf("  re-bring-up: %zu usable tiles, SSI %s\n",
                r.rebringup->usable_tiles,
                r.rebringup->single_system_image ? "confirmed" : "lost");

  std::printf("\n== Monte Carlo: 8 random bursts on the same wafer ==\n");
  CampaignOptions mc = o;
  mc.schedule.reset();
  mc.fault_horizon = 2000;
  const std::vector<DegradationReport> trials =
      DegradationCampaign(mc).run_trials(8);
  const CampaignSummary summary = summarize(trials);
  std::printf("  mean usable fraction %.3f | mean reachability %.2f%% | "
              "mean recovery %.0f cycles\n",
              summary.mean_final_usable_fraction,
              summary.mean_pair_reachability_pct,
              summary.mean_recovery_cycles);
  std::printf("  lost/issued %.5f | SSI survived %d/%d | drained %d/%d\n",
              summary.lost_per_issued, summary.single_system_image_survived,
              summary.trials, summary.fully_drained, summary.trials);

  if (trace.active() || std::getenv("WSP_RUNREPORT_FILE") != nullptr) {
    obs::MetricsRegistry registry;
    publish_metrics(trials, registry);
    obs::RunReport report("fault_campaign");
    report.add_scalar("summary", "mean_final_usable_fraction",
                      summary.mean_final_usable_fraction);
    report.add_scalar("summary", "mean_pair_reachability_pct",
                      summary.mean_pair_reachability_pct);
    report.add_scalar("summary", "lost_per_issued", summary.lost_per_issued);
    report.add_metrics("campaign", registry);
    const std::string path = report.write_default();
    if (!path.empty()) std::printf("run report: %s\n", path.c_str());
  }
  return 0;
}
