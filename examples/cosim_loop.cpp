// PDN <-> NoC co-simulation, narrated.
//
// Runs the epoch-stepped coupled loop on a 32x32 wafer with a traffic
// hotspot: every cycle synthetic traffic steps the dual-mesh NoC,
// and every 64 cycles the measured per-tile activity becomes a power map,
// the power planes are re-solved (warm-started from the previous epoch's
// solution, batched with a static idle-floor reference), and each link's
// bit-error rate is re-derived from its weaker endpoint's regulated
// voltage.  The printout shows the loop converging: droop deepens where
// the traffic flows, BER rises on the sagged links, and the whole run is
// bit-identical at any thread count.
//
// Observability: run with WSP_TRACE=1 to record cosim.epoch spans into
// TRACE_cosim_loop.json and RUNREPORT_cosim_loop.json with the "cosim."
// gauges.
//
//   ./cosim_loop
#include <cstdio>

#include "wsp/cosim/cosim.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/obs/trace.hpp"

int main() {
  using namespace wsp;

  const obs::ScopedTrace trace("cosim_loop");

  cosim::CosimOptions o;
  o.config = SystemConfig::reduced(32, 32);
  o.seed = 7;
  o.epoch_cycles = 64;
  o.noc.mesh.integrity.enabled = true;
  o.traffic.pattern = noc::TrafficPattern::Hotspot;
  o.traffic.injection_rate = 0.05;
  o.traffic.hotspot = {16, 16};
  // Amplified line regulation plus a sensitive BER mapping so the
  // millivolt-scale regulated deltas are visible on the wire within a
  // short demo run.
  o.pdn.ldo.line_regulation = 0.1;
  o.ber.floor_ber = 1e-6;
  o.ber.volts_per_decade = 0.003;

  cosim::CosimLoop loop(o);
  std::printf("== coupled PDN<->NoC loop: 32x32, hotspot (16,16), %llu-cycle "
              "epochs ==\n\n",
              static_cast<unsigned long long>(o.epoch_cycles));
  std::printf("%-6s %-10s %-12s %-12s %-14s %-12s %s\n", "epoch", "travs",
              "power[W]", "min_V", "excess_droop", "mean_BER", "warm_iters");
  for (int e = 0; e < 12; ++e) {
    loop.run_epochs(1);
    const cosim::EpochReport& r = loop.epochs().back();
    std::printf("%-6llu %-10llu %-12.1f %-12.4f %-14.6f %-12.3e %d\n",
                static_cast<unsigned long long>(r.epoch),
                static_cast<unsigned long long>(r.traversals),
                r.total_power_w, r.min_supply_v, r.max_excess_droop_v,
                r.mean_ber, r.coupled_iterations);
  }

  const cosim::CosimReport r = loop.report();
  std::printf("\n-- summary --\n");
  std::printf("cycles                 : %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("issued / completed     : %llu / %llu\n",
              static_cast<unsigned long long>(r.noc_stats.issued),
              static_cast<unsigned long long>(r.noc_stats.completed));
  std::printf("link retransmits       : %llu\n",
              static_cast<unsigned long long>(r.noc_stats.link_retransmits));
  std::printf("worst min supply       : %.4f V\n", r.worst_min_supply_v);
  std::printf("worst excess droop     : %.6f V\n", r.worst_excess_droop_v);
  std::printf("peak mean BER          : %.3e\n", r.peak_mean_ber);
  std::printf("state fingerprint      : %08x\n", loop.state_fingerprint());

  obs::RunReport report("cosim_loop");
  report.add_scalar("summary", "worst_min_supply_v", r.worst_min_supply_v);
  report.add_scalar("summary", "worst_excess_droop_v",
                    r.worst_excess_droop_v);
  report.add_scalar("summary", "peak_mean_ber", r.peak_mean_ber);
  report.add_metrics("cosim", loop.metrics());
  const std::string path = report.write_default();
  if (!path.empty()) std::printf("run report: %s\n", path.c_str());
  return 0;
}
