// Multi-tenant workload classes on a degraded wafer: the tail-latency and
// droop study behind EXPERIMENTS.md's "workload co-simulation" section.
//
// Runs each tenant class — an all-reduce collective ring, a layer-pipeline
// stream, and an event-driven spiking burst pattern — on the full 32x32
// dual-mesh wafer with 20 random tile faults, through the coupled
// PDN <-> NoC loop (traffic -> power -> droop -> BER -> retransmits).
// Reports per-class delivery latency percentiles and worst-case droop,
// and writes everything to a RUNREPORT_workload_mix.json artifact.
//
//   ./workload_mix [faults] [epochs]
#include <cstdio>
#include <cstdlib>

#include "wsp/cosim/cosim.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/workloads/traffic_gen.hpp"

int main(int argc, char** argv) {
  using namespace wsp;
  using namespace wsp::workloads;

  const std::size_t fault_count =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;
  const std::uint64_t epochs = argc > 2 ? std::atoi(argv[2]) : 4;

  const SystemConfig config = SystemConfig::reduced(32, 32);
  Rng fault_rng(404);
  const FaultMap faults =
      FaultMap::random_with_count(config.grid(), fault_count, fault_rng);
  std::printf("wafer: 32x32 tiles (%d cores), %zu random tile faults\n",
              config.total_cores(), fault_count);
  std::printf("loop: %llu epochs x 64 cycles, link integrity + "
              "voltage->BER coupling on\n\n",
              static_cast<unsigned long long>(epochs));

  obs::RunReport report("workload_mix");
  std::printf("%-15s %10s %10s %6s %6s %6s %14s %12s\n", "class", "injected",
              "completed", "p50", "p95", "p99", "excess droop", "peak BER");

  for (const WorkloadClass cls :
       {WorkloadClass::AllReduceRing, WorkloadClass::LayerPipeline,
        WorkloadClass::SpikingBurst}) {
    cosim::CosimOptions o;
    o.config = config;
    o.seed = 404;
    o.epoch_cycles = 64;
    o.noc.mesh.integrity.enabled = true;
    o.pdn.ldo.line_regulation = 0.1;
    o.ber.floor_ber = 1e-6;
    o.ber.volts_per_decade = 0.003;
    o.workload.cls = cls;
    o.workload.seed = 404;
    o.workload.allreduce.chunk_packets = 4;
    o.workload.allreduce.step_cycles = 8;
    o.workload.allreduce.gap_cycles = 16;
    o.workload.pipeline.stages = 4;
    o.workload.pipeline.comm_cycles = 8;
    o.workload.pipeline.stage_flops = 2.0e5;
    o.workload.spiking.background_rate = 0.002;
    o.workload.spiking.burst_interval = 128;
    o.workload.spiking.hotspot = {16, 16};
    o.workload.spiking.burst_radius = 3;
    o.workload.spiking.burst_cycles = 48;
    o.workload.spiking.burst_intensity = 0.6;

    cosim::CosimLoop loop(o, faults);
    loop.run_epochs(epochs);

    const noc::TrafficReport lat = loop.latency_summary();
    const cosim::CosimReport cr = loop.report();
    std::printf("%-15s %10llu %10llu %6llu %6llu %6llu %11.4f V %12.3e\n",
                to_string(cls),
                static_cast<unsigned long long>(cr.noc_stats.issued),
                static_cast<unsigned long long>(cr.noc_stats.completed),
                static_cast<unsigned long long>(lat.p50_latency),
                static_cast<unsigned long long>(lat.p95_latency),
                static_cast<unsigned long long>(lat.p99_latency),
                cr.worst_excess_droop_v, cr.peak_mean_ber);

    const std::string section = std::string("workload.") + to_string(cls);
    report.add_scalar(section, "p50_latency",
                      static_cast<double>(lat.p50_latency));
    report.add_scalar(section, "p95_latency",
                      static_cast<double>(lat.p95_latency));
    report.add_scalar(section, "p99_latency",
                      static_cast<double>(lat.p99_latency));
    report.add_scalar(section, "issued",
                      static_cast<double>(cr.noc_stats.issued));
    report.add_scalar(section, "completed",
                      static_cast<double>(cr.noc_stats.completed));
    report.add_scalar(section, "worst_excess_droop_v", cr.worst_excess_droop_v);
    report.add_scalar(section, "worst_min_supply_v", cr.worst_min_supply_v);
    report.add_scalar(section, "peak_mean_ber", cr.peak_mean_ber);
    report.add_metrics(section, loop.metrics());
  }

  const std::string path = report.write_default();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write run report\n");
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
