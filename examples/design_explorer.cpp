// Design-space exploration: using the library the way the paper's team
// used their methodology — to *decide* the design.
//
// Sweeps the four headline decisions and prints the trade-off each one
// rests on:
//   1. pillars per pad          (Sec. V:   yield)
//   2. number of DoR networks   (Sec. VI:  resiliency)
//   3. power-delivery strategy  (Sec. III: efficiency vs area)
//   4. JTAG chain organisation  (Sec. VII: boot time)
//
//   ./design_explorer
#include <cstdio>

#include "wsp/io/bonding_yield.hpp"
#include "wsp/noc/connectivity.hpp"
#include "wsp/pdn/strategy.hpp"
#include "wsp/testinfra/test_time.hpp"

int main() {
  using namespace wsp;
  const SystemConfig cfg = SystemConfig::paper_prototype();

  std::printf("=== decision 1: pillars per I/O pad (Sec. V) ===\n");
  std::printf("%10s %16s %22s\n", "pillars", "chiplet yield",
              "E[faulty chiplets]");
  for (int pillars = 1; pillars <= 4; ++pillars) {
    const io::AssemblyYield y = io::analyze_assembly_yield(cfg, pillars);
    std::printf("%10d %15.3f%% %22.2f %s\n", pillars,
                100.0 * y.compute.chiplet_yield, y.expected_faulty_chiplets,
                pillars == 2 ? "  <- chosen (pads fit 2 pillars)" : "");
  }

  std::printf("\n=== decision 2: one vs two DoR networks (Sec. VI) ===\n");
  Rng rng(3);
  const auto points = noc::fig6_sweep(cfg.grid(), {1, 5, 10}, 15, rng);
  std::printf("%8s %22s %16s\n", "faults", "1 net round-trip (%)",
              "2 networks (%)");
  for (const auto& p : points)
    std::printf("%8zu %22.2f %16.3f\n", p.fault_count,
                p.mean_single_roundtrip_pct, p.mean_dual_pct);
  std::printf("-> two networks chosen: link budget (400 wires/side) covers "
              "both\n");

  std::printf("\n=== decision 3: power delivery (Sec. III) ===\n");
  const pdn::StrategyComparison cmp = pdn::compare_strategies(cfg);
  std::printf("LDO : %5.1f%% efficient, %4.0f%% area overhead, %6.1f A "
              "plane current\n",
              100.0 * cmp.ldo.efficiency,
              100.0 * cmp.ldo.area_overhead_fraction,
              cmp.ldo.plane_current_a);
  std::printf("buck: %5.1f%% efficient, %4.0f%% area overhead, %6.1f A "
              "plane current\n",
              100.0 * cmp.buck.efficiency,
              100.0 * cmp.buck.area_overhead_fraction,
              cmp.buck.plane_current_a);
  std::printf("-> LDO chosen for the sub-kW prototype (simplicity, no area "
              "loss); buck wins at higher power\n");

  std::printf("\n=== decision 4: JTAG chain organisation (Sec. VII) ===\n");
  std::printf("%8s %12s %16s\n", "chains", "broadcast", "memory load");
  for (const int chains : {1, 32}) {
    for (const bool bcast : {false, true}) {
      const testinfra::LoadTimeReport r =
          testinfra::memory_load_time(cfg, chains, bcast);
      std::printf("%8d %12s %13.1f min %s\n", chains, bcast ? "yes" : "no",
                  r.minutes(),
                  (chains == 32 && bcast)
                      ? "  <- chosen (32 row chains + broadcast)"
                      : "");
    }
  }
  return 0;
}
