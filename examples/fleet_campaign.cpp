// Fault-tolerant fleet campaign: wsp::fleet driving a degradation
// campaign across supervised worker processes.
//
// The dispatcher process re-execs this same binary with a "--worker" argv
// tail, one process per shard; each worker checkpoints after every trial,
// bumps a heartbeat beacon, and writes a CAMP partial.  Dead workers are
// re-dispatched from their snapshots, hung workers are escalated
// SIGCONT+SIGTERM then SIGKILL, and shards that keep dying are quarantined
// so the run terminates with honest partial coverage instead of hanging.
//
//   # 12 trials over 4 shards, 3 at a time, surviving seeded SIGKILLs:
//   ./fleet_campaign --trials 12 --shards 4 --chaos-kill-after 1
//
//   # the single-process reference (byte-identical campaign report):
//   ./fleet_campaign --trials 12 --single
//
// Two run reports land in --work-dir: RUNREPORT_fleet_campaign.json holds
// only campaign results (byte-comparable against --single for every
// non-quarantined shard) and RUNREPORT_fleet_dispatch.json holds the
// fleet's own supervision metrics, which legitimately vary with chaos.
//
// Exit status: 0 full coverage, 3 partial coverage (quarantined shards),
// 1 error, 2 bad usage.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "wsp/fleet/dispatcher.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/resilience/campaign.hpp"

namespace {

constexpr int kExitPartialCoverage = 3;

// Same campaign as campaign_shard: either binary can serve as the worker
// (the options fingerprint embedded in every CAMP file proves it).
wsp::resilience::CampaignOptions campaign_options() {
  using namespace wsp;
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 7;
  o.run_cycles = 2000;
  o.fault_horizon = 1500;
  o.injection_rate = 0.02;
  return o;
}

void emit_campaign_report(
    const std::vector<wsp::resilience::DegradationReport>& reports,
    const std::string& work_dir, const char* how) {
  using namespace wsp;
  const resilience::CampaignSummary summary = resilience::summarize(reports);
  std::printf("%s: %d trials | mean usable fraction %.3f | mean "
              "reachability %.2f%% | SSI %d/%d | drained %d/%d\n",
              how, summary.trials, summary.mean_final_usable_fraction,
              summary.mean_pair_reachability_pct,
              summary.single_system_image_survived, summary.trials,
              summary.fully_drained, summary.trials);
  obs::MetricsRegistry registry;
  resilience::publish_metrics(reports, registry);
  obs::RunReport report("fleet_campaign");
  report.add_scalar("summary", "mean_final_usable_fraction",
                    summary.mean_final_usable_fraction);
  report.add_scalar("summary", "mean_pair_reachability_pct",
                    summary.mean_pair_reachability_pct);
  report.add_scalar("summary", "lost_per_issued", summary.lost_per_issued);
  report.add_metrics("campaign", registry);
  const std::string path = work_dir + "/RUNREPORT_fleet_campaign.json";
  if (report.write(path)) std::printf("campaign report: %s\n", path.c_str());
}

void emit_fleet_report(const wsp::fleet::FleetReport& fleet,
                       const std::string& work_dir) {
  using namespace wsp;
  obs::MetricsRegistry registry;
  fleet::publish_fleet_metrics(fleet, registry);
  obs::RunReport report("fleet_dispatch");
  report.add_metrics("fleet", registry);
  const std::string path = work_dir + "/RUNREPORT_fleet_dispatch.json";
  if (report.write(path)) std::printf("dispatch report: %s\n", path.c_str());
}

std::string self_program(const char* argv0) {
  // argv[0] is what the dispatcher will execv; prefer /proc/self/exe when
  // argv[0] is not a usable path (e.g. launched via PATH).
  if (argv0 && argv0[0] && ::access(argv0, X_OK) == 0) return argv0;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0 ? argv0 : "fleet_campaign";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fleet_campaign --trials N [--shards S] [--max-workers W]\n"
      "         [--work-dir DIR] [--max-attempts N] [--heartbeat-timeout S]\n"
      "         [--term-grace S] [--straggler-factor F] [--poison-shard K]\n"
      "         [--chaos-seed N] [--chaos-kill-after N]"
      " [--chaos-stall-after N]\n"
      "         [--chaos-kill-prob P] [--chaos-stall-prob P]"
      " [--stall-resume S]\n"
      "         [--chaos-max-events N]\n"
      "       fleet_campaign --trials N --single [--work-dir DIR]\n"
      "       fleet_campaign --worker <generated argv tail> [--poison]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsp;

  std::vector<std::string> args(argv + 1, argv + argc);

  // --- worker mode: the dispatcher re-execs us with this tail -------------
  if (!args.empty() && args[0] == "--worker") {
    bool poison = false;
    std::vector<std::string> tail;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--poison") poison = true;
      else tail.push_back(args[i]);
    }
    fleet::WorkerShardArgs shard_args;
    try {
      shard_args = fleet::parse_worker_argv(tail);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fleet worker: %s\n", e.what());
      return fleet::kWorkerExitBadArgs;
    }
    if (poison) {
      // Poison-shard stand-in: die before producing anything, every
      // attempt, so the dispatcher's quarantine path is exercised.
      std::fprintf(stderr, "fleet worker shard %d: poisoned, failing\n",
                   shard_args.shard);
      return fleet::kWorkerExitError;
    }
    const resilience::DegradationCampaign campaign(campaign_options());
    return fleet::run_worker(campaign, shard_args);
  }

  // --- dispatcher / single-process modes ----------------------------------
  int trials = 0;
  bool single = false;
  int poison_shard = -1;
  fleet::FleetOptions options;
  options.shards = 0;
  options.trials_per_shard = 4;
  options.heartbeat_timeout_s = 20.0;
  options.term_grace_s = 2.0;

  const auto want_value = [&](std::size_t i) { return i + 1 < args.size(); };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--single") single = true;
    else if (arg == "--trials" && want_value(i))
      trials = std::atoi(args[++i].c_str());
    else if (arg == "--shards" && want_value(i))
      options.shards = std::atoi(args[++i].c_str());
    else if (arg == "--max-workers" && want_value(i))
      options.max_workers = std::atoi(args[++i].c_str());
    else if (arg == "--work-dir" && want_value(i)) options.work_dir = args[++i];
    else if (arg == "--max-attempts" && want_value(i))
      options.max_attempts = std::atoi(args[++i].c_str());
    else if (arg == "--heartbeat-timeout" && want_value(i))
      options.heartbeat_timeout_s = std::atof(args[++i].c_str());
    else if (arg == "--term-grace" && want_value(i))
      options.term_grace_s = std::atof(args[++i].c_str());
    else if (arg == "--straggler-factor" && want_value(i))
      options.straggler_factor = std::atof(args[++i].c_str());
    else if (arg == "--poison-shard" && want_value(i))
      poison_shard = std::atoi(args[++i].c_str());
    else if (arg == "--chaos-seed" && want_value(i)) {
      options.chaos.enabled = true;
      options.chaos.seed =
          static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (arg == "--chaos-kill-after" && want_value(i)) {
      options.chaos.enabled = true;
      options.chaos.first_attempt_kill_after =
          static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (arg == "--chaos-stall-after" && want_value(i)) {
      options.chaos.enabled = true;
      options.chaos.first_attempt_stall_after =
          static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (arg == "--chaos-kill-prob" && want_value(i)) {
      options.chaos.enabled = true;
      options.chaos.kill_probability = std::atof(args[++i].c_str());
    } else if (arg == "--chaos-stall-prob" && want_value(i)) {
      options.chaos.enabled = true;
      options.chaos.stall_probability = std::atof(args[++i].c_str());
    } else if (arg == "--stall-resume" && want_value(i)) {
      options.chaos.stall_resume_s = std::atof(args[++i].c_str());
    } else if (arg == "--chaos-max-events" && want_value(i)) {
      options.chaos.max_events = std::atoi(args[++i].c_str());
    } else {
      return usage();
    }
  }
  if (trials < 1) return usage();
  options.trials = trials;

  const resilience::DegradationCampaign campaign(campaign_options());
  try {
    if (single) {
      emit_campaign_report(campaign.run_trials(trials), options.work_dir,
                           "single-process");
      return 0;
    }

    fleet::FleetDispatcher dispatcher(campaign, options);
    fleet::WorkerCommand command;
    command.program = self_program(argv[0]);
    command.args = {"--worker"};
    if (poison_shard >= 0)
      command.extra_args = [poison_shard](int shard) {
        return shard == poison_shard ? std::vector<std::string>{"--poison"}
                                     : std::vector<std::string>{};
      };

    const fleet::FleetReport fleet_report = dispatcher.run(command);
    std::printf("fleet: %d/%d shards completed, %d quarantined, %d retries, "
                "%d kills, %d stragglers re-issued\n",
                fleet_report.shards_completed, fleet_report.shards_total,
                fleet_report.shards_quarantined, fleet_report.retries,
                fleet_report.worker_kills, fleet_report.stragglers_reissued);
    emit_campaign_report(fleet_report.reports, options.work_dir,
                         fleet_report.complete() ? "fleet merged"
                                                 : "fleet merged (partial)");
    emit_fleet_report(fleet_report, options.work_dir);
    return fleet_report.complete() ? 0 : kExitPartialCoverage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_campaign: %s\n", e.what());
    return 1;
  }
}
