// Replay-based failure bisection from a wsp::ckpt snapshot.
//
// Long NoC runs fail late: a transaction is declared lost at cycle F after
// a long quiet prefix.  Re-running from cycle 0 with tracing on is slow,
// and the trace ring would have wrapped long before F anyway.  Instead the
// run snapshots itself periodically; this example reloads the last
// snapshot taken *before* the failure and re-steps only the offending
// window — run it under WSP_TRACE=1 and the replay records the spans of
// exactly the cycles that matter into TRACE_replay_bisect.json.
//
// Determinism is what makes the replay faithful: the snapshot frame
// captures the full NoC state (packet pool, per-link rings, credit words,
// RNG streams, live transactions, deadlines) through
// NocSystem::save_state, plus the traffic generator's RNG and the current
// runtime fault map alongside it in the same frame.  The re-stepped window
// is therefore bit-identical to the original run — proven at the end by
// byte-comparing the re-serialised state at the failure cycle.
//
//   ./replay_bisect              # quiet replay + bit-identity check
//   WSP_TRACE=1 ./replay_bisect  # replay window traced
#include <array>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/obs/trace.hpp"

namespace {

constexpr std::uint32_t kFrameKind = wsp::ckpt::fourcc("RBIS");
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::uint64_t kRunCycles = 6000;
constexpr std::uint64_t kSnapshotPeriod = 512;
constexpr std::uint64_t kFaultCycle = 2000;
constexpr double kInjectionRate = 0.02;

// The scripted runtime fault: a partial column wall at kFaultCycle.  Both
// the reference run and the replay apply it from the same function, the
// way a real campaign replays its FaultSchedule.
void scripted_fault(wsp::FaultMap& faults) {
  for (int y = 4; y <= 11; ++y) faults.set_faulty({8, y}, true);
}

// One cycle of seeded random traffic from the usable tiles.
void inject_traffic(wsp::noc::NocSystem& noc, const wsp::FaultMap& faults,
                    wsp::Rng& rng) {
  const wsp::TileGrid& grid = faults.grid();
  grid.for_each([&](wsp::TileCoord src) {
    if (faults.is_faulty(src)) return;
    if (!rng.bernoulli(kInjectionRate)) return;
    const wsp::TileCoord dst = grid.coord_of(rng.below(grid.tile_count()));
    if (dst == src || faults.is_faulty(dst)) return;
    noc.issue(src, dst, wsp::noc::PacketType::ReadRequest);
  });
}

// Snapshot frame: NoC state + traffic RNG + current fault map, one file.
std::vector<std::uint8_t> snapshot(const wsp::noc::NocSystem& noc,
                                   const wsp::Rng& rng,
                                   const wsp::FaultMap& faults) {
  wsp::ckpt::Writer w;
  noc.save_state(w);
  for (std::uint64_t word : rng.state()) w.u64(word);
  wsp::ckpt::save_fault_map(w, faults);
  return wsp::ckpt::seal(kFrameKind, kFrameVersion, w);
}

}  // namespace

int main() {
  using namespace wsp;
  const obs::ScopedTrace trace("replay_bisect");

  const TileGrid grid(16, 16);
  FaultMap faults(grid);
  noc::NocOptions opt;
  opt.response_timeout = 400;  // arm the timeout/retry machinery
  opt.max_retries = 1;         // so stranded transactions get declared lost

  noc::NocSystem noc(faults, opt);
  Rng rng(2026);
  std::vector<noc::CompletedTransaction> done;

  std::printf("== reference run: 16x16 dual-network NoC, %llu cycles, "
              "snapshot every %llu ==\n",
              static_cast<unsigned long long>(kRunCycles),
              static_cast<unsigned long long>(kSnapshotPeriod));

  // --- reference run, snapshotting periodically --------------------------
  struct Snapshot {
    std::uint64_t cycle;
    std::vector<std::uint8_t> frame;
  };
  std::vector<Snapshot> snapshots;
  std::optional<std::uint64_t> failure_cycle;
  std::vector<std::uint8_t> reference_state;
  std::uint64_t prev_lost = 0;

  while (noc.now() < kRunCycles && !failure_cycle) {
    if (noc.now() % kSnapshotPeriod == 0)
      snapshots.push_back({noc.now(), snapshot(noc, rng, faults)});
    if (noc.now() == kFaultCycle) {
      scripted_fault(faults);
      noc.apply_fault_state(faults);
      std::printf("cycle %5llu: runtime fault — column wall killed, "
                  "%zu tiles unusable\n",
                  static_cast<unsigned long long>(noc.now()),
                  grid.tile_count() - faults.healthy_count());
    }
    inject_traffic(noc, faults, rng);
    noc.step(done);
    const std::uint64_t lost = noc.stats().lost;
    if (lost > prev_lost) {
      failure_cycle = noc.now();
      ckpt::Writer w;
      noc.save_state(w);
      reference_state = w.bytes();
      std::printf("cycle %5llu: FAILURE — %llu transaction(s) declared "
                  "lost\n",
                  static_cast<unsigned long long>(*failure_cycle),
                  static_cast<unsigned long long>(lost));
    }
    prev_lost = lost;
  }

  if (!failure_cycle) {
    std::printf("no transaction lost in %llu cycles — nothing to bisect\n",
                static_cast<unsigned long long>(kRunCycles));
    return 0;
  }

  // --- pick the last snapshot before the failure -------------------------
  const Snapshot* base = nullptr;
  for (const Snapshot& s : snapshots)
    if (s.cycle <= *failure_cycle) base = &s;
  std::printf("\n== bisect: replaying window [%llu, %llu] from the last "
              "pre-failure snapshot ==\n",
              static_cast<unsigned long long>(base->cycle),
              static_cast<unsigned long long>(*failure_cycle));

  // Round-trip the frame through a file, exactly as a crashed run would:
  // atomic write, reload, CRC + kind verified before any byte is used.
  const std::string path = "CKPT_replay_bisect.wsp";
  ckpt::atomic_write_file(path, base->frame.data(), base->frame.size());
  const ckpt::Frame frame = ckpt::load_frame_file(path, kFrameKind);
  ckpt::Reader r(frame.payload);

  noc::NocSystem replay(FaultMap(grid), opt);
  replay.load_state(r);
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) word = r.u64();
  Rng replay_rng(1);
  replay_rng.set_state(rng_state);
  FaultMap replay_faults = ckpt::load_fault_map(r, &grid);
  std::printf("snapshot restored: cycle %llu, %zu transactions in flight\n",
              static_cast<unsigned long long>(replay.now()),
              replay.inflight_transactions());

  // --- re-step the offending window (traced under WSP_TRACE=1) ----------
  {
    WSP_TRACE_SPAN("replay.window");
    while (replay.now() < *failure_cycle) {
      if (replay.now() == kFaultCycle) {
        scripted_fault(replay_faults);
        replay.apply_fault_state(replay_faults);
      }
      inject_traffic(replay, replay_faults, replay_rng);
      replay.step(done);
    }
  }

  const noc::NocStats st = replay.stats();
  std::printf("replayed to cycle %llu: issued %llu, timeouts %llu, "
              "lost %llu\n",
              static_cast<unsigned long long>(replay.now()),
              static_cast<unsigned long long>(st.issued),
              static_cast<unsigned long long>(st.timeouts),
              static_cast<unsigned long long>(st.lost));

  ckpt::Writer w;
  replay.save_state(w);
  const bool identical = w.bytes() == reference_state;
  std::printf("replayed state vs straight-through state: %s\n",
              identical ? "bit-identical" : "DIVERGED");
  if (trace.active())
    std::printf("replay window spans: %s\n", trace.path().c_str());
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
