// Bring-up flow: what actually happens between "chiplets bonded" and
// "machine usable", end to end on one simulated wafer.
//
//   1. Monte Carlo die-to-wafer assembly produces a fault map.
//   2. Per-row JTAG chains isolate the faulty tiles (progressive
//      unrolling, Sec. VII / Fig. 10).
//   3. An edge tile generates the fast clock; forwarding covers the wafer
//      (Sec. IV / Fig. 4).
//   4. The kernel builds its network-selection table from the fault map
//      (Sec. VI / Fig. 7).
//   5. Memory-load time is estimated for the 32-chain configuration.
//
//   ./bringup_flow [seed]
#include <cstdio>
#include <cstdlib>

#include "wsp/arch/bringup.hpp"
#include "wsp/clock/duty_cycle.hpp"
#include "wsp/clock/forwarding.hpp"
#include "wsp/io/bonding_yield.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/testinfra/dap_chain.hpp"
#include "wsp/testinfra/test_time.hpp"

int main(int argc, char** argv) {
  using namespace wsp;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 20210101ull;

  // The full prototype, but with a degraded pillar process (per-pad
  // failure 5e-6 -> ~1% faulty chiplets -> a dozen-plus faulty tiles per
  // wafer) so the run shows the fault-tolerance machinery doing real work.
  SystemConfig cfg = SystemConfig::paper_prototype();
  cfg.pillar_bond_yield = 0.999995;

  std::printf("=== waferscale bring-up (seed %llu) ===\n\n",
              static_cast<unsigned long long>(seed));

  // --- 1. assembly ---
  Rng rng(seed);
  const io::AssemblyDraw draw = io::simulate_assembly(cfg, 1, rng);
  const FaultMap& faults = draw.tile_faults;
  std::printf("[assembly] %zu faulty compute + %zu faulty memory chiplets "
              "-> %zu faulty tiles of %d\n",
              draw.faulty_compute_chiplets, draw.faulty_memory_chiplets,
              faults.fault_count(), cfg.total_tiles());

  // --- 2. post-assembly JTAG screening, one chain per row ---
  std::uint64_t total_tcks = 0;
  std::size_t located = 0;
  for (int row = 0; row < cfg.array_height; ++row) {
    std::vector<bool> row_faults;
    for (int x = 0; x < cfg.array_width; ++x)
      row_faults.push_back(faults.is_faulty({x, row}));
    testinfra::WaferTestChain chain(cfg.array_width, cfg.cores_per_tile,
                                    row_faults);
    chain.set_broadcast(true);  // the 14x trick
    std::uint64_t tcks = 0;
    // Unroll repeatedly: each pass finds the next faulty tile.  (The real
    // flow re-tests with the faulty tile's mode forced to bypass; here we
    // simply report the first per row, as Fig. 10 does.)
    const auto first = chain.locate_first_faulty(&tcks);
    total_tcks += tcks;
    if (first) ++located;
  }
  std::printf("[test] 32 row chains, broadcast mode: %zu rows contain a "
              "faulty tile; %.2f ms of TCK at 10 MHz to sweep\n",
              located, static_cast<double>(total_tcks) / 10e6 * 1e3);

  // --- 3. clock setup ---
  std::vector<TileCoord> generators;
  cfg.grid().for_each([&](TileCoord c) {
    if (cfg.grid().is_edge(c) && faults.is_healthy(c) && generators.empty())
      generators.push_back(c);
  });
  const clock::ForwardingPlan plan =
      clock::simulate_forwarding(faults, generators);
  const clock::WaferDutyReport duty =
      clock::analyze_plan_duty(plan, cfg.grid(), {});
  std::printf("[clock] generator at %s: %zu tiles clocked, %zu healthy "
              "tiles unreachable, worst duty excursion %.1f%%, dead clocks "
              "%zu\n",
              to_string(generators[0]).c_str(), plan.reached_count,
              plan.unreached_healthy_count, 100.0 * duty.worst_excursion,
              duty.dead_tiles);

  // --- 4. kernel network table + a smoke round of traffic ---
  noc::NocSystem noc(faults);
  Rng trng(seed + 1);
  int ok = 0, rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    const TileCoord s = cfg.grid().coord_of(trng.below(1024));
    const TileCoord d = cfg.grid().coord_of(trng.below(1024));
    if (faults.is_faulty(s) || faults.is_faulty(d)) continue;
    if (noc.issue(s, d, noc::PacketType::ReadRequest))
      ++ok;
    else
      ++rejected;
  }
  std::vector<noc::CompletedTransaction> done;
  const bool drained = noc.drain(done);
  std::printf("[network] %d transactions issued (%d rejected as "
              "unreachable), %zu completed, %llu relayed through "
              "intermediate tiles, drained: %s\n",
              ok, rejected, done.size(),
              static_cast<unsigned long long>(noc.stats().relayed),
              drained ? "yes" : "NO");

  // --- 5. boot-time estimate ---
  const testinfra::LoadTimeReport load =
      testinfra::memory_load_time(cfg, cfg.jtag_chains, true);
  std::printf("[boot] loading all %.1f Gbit of wafer SRAM over %d chains "
              "(broadcast): %.1f minutes\n",
              static_cast<double>(load.total_payload_bits) / 1e9,
              load.chains, load.minutes());

  std::printf("\nwafer is up: %zu of %d tiles usable (%.1f%%)\n",
              plan.reached_count, cfg.total_tiles(),
              100.0 * static_cast<double>(plan.reached_count) /
                  cfg.total_tiles());

  // The same flow is available as one library call; cross-check it.
  const arch::BringupReport api = arch::run_bringup(cfg, faults);
  std::printf("run_bringup() concurs: %zu usable tiles, single system "
              "image: %s, worst clock skew %.0f ps\n",
              api.usable_tiles, api.single_system_image ? "yes" : "no",
              api.skew.worst_skew_s * 1e12);
  return 0;
}
