// Graph analytics on the waferscale machine: the workload class the
// paper's introduction motivates (graph processing / data analytics).
//
// Partitions an R-MAT power-law graph across a simulated wafer section,
// runs BFS and SSSP through the cycle-level NoC + core model, verifies
// both against sequential references, and reports the communication /
// compute breakdown — including what happens when tiles are faulty.
//
//   ./graph_analytics [tiles_per_side] [rmat_scale]
#include <cstdio>
#include <cstdlib>

#include "wsp/noc/noc_system.hpp"
#include "wsp/workloads/graph_apps.hpp"
#include "wsp/workloads/pagerank.hpp"
#include "wsp/workloads/traffic_gen.hpp"

int main(int argc, char** argv) {
  using namespace wsp;
  using namespace wsp::workloads;

  const int dim = argc > 1 ? std::atoi(argv[1]) : 4;
  const int scale = argc > 2 ? std::atoi(argv[2]) : 9;

  Rng rng(7);
  const Graph g = make_rmat_graph(scale, (1u << scale) * 4, 6, rng);
  std::printf("graph: R-MAT scale-%d, %u vertices, %llu directed edges\n",
              scale, g.vertex_count(),
              static_cast<unsigned long long>(g.edge_count()));

  const SystemConfig cfg = SystemConfig::reduced(dim, dim);
  std::printf("machine: %dx%d tiles = %d cores, %0.1f MB shared SRAM\n\n",
              dim, dim, cfg.total_cores(),
              static_cast<double>(cfg.total_shared_memory_bytes()) /
                  (1 << 20));

  struct Run {
    const char* name;
    bool weighted;
    std::size_t faults;
  };
  for (const Run run : {Run{"BFS", false, 0}, Run{"SSSP", true, 0},
                        Run{"BFS+faults", false, 2}}) {
    FaultMap faults(cfg.grid());
    if (run.faults > 0) {
      // Interior faults: the NoC must route around them.
      faults.set_faulty({dim / 2, dim / 2});
      faults.set_faulty({1, dim - 2});
    }
    const GraphAppResult r =
        run_graph_app(cfg, faults, g, /*source=*/0, run.weighted);
    const auto reference =
        run.weighted ? reference_sssp(g, 0) : reference_bfs(g, 0);
    const bool ok = r.distance == reference;

    std::uint32_t reached = 0;
    for (const std::uint32_t d : r.distance)
      if (d != kUnreachedDistance) ++reached;

    std::printf("%-11s makespan %8llu cycles (%.2f ms at 300 MHz) | "
                "%7llu msgs | core util %4.1f%% | reached %u | verified %s\n",
                run.name,
                static_cast<unsigned long long>(r.stats.makespan),
                static_cast<double>(r.stats.makespan) / 300e6 * 1e3,
                static_cast<unsigned long long>(r.stats.messages_sent),
                100.0 * r.stats.mean_core_utilization, reached,
                ok ? "yes" : "NO");
    if (!ok) return 1;
  }

  // PageRank: the iterative-analytics class, bulk-synchronous over the
  // asynchronous NoC, exact against the fixed-point reference.
  const FaultMap healthy(cfg.grid());
  const PageRankResult pr = run_pagerank(cfg, healthy, g, {});
  const bool pr_ok = pr.rank == reference_pagerank(g, {});
  std::printf("%-11s makespan %8llu cycles (%.2f ms at 300 MHz) | "
              "%7llu msgs | %d iterations | verified %s\n",
              "PageRank",
              static_cast<unsigned long long>(pr.stats.makespan),
              static_cast<double>(pr.stats.makespan) / 300e6 * 1e3,
              static_cast<unsigned long long>(pr.stats.messages_sent),
              pr.iterations_run, pr_ok ? "yes" : "NO");
  if (!pr_ok) return 1;

  // The same BFS, viewed as wafer traffic: the GraphWave generator turns
  // each BFS frontier into the cross-tile message wave it implies and
  // injects it — deterministically — into the cycle-level NoC through the
  // wsp::workloads::TrafficGenerator seam, reporting delivery latency
  // percentiles instead of kernel makespan.
  WorkloadSpec spec;
  spec.cls = WorkloadClass::GraphWave;
  spec.seed = 7;
  spec.graph.scale = scale;
  spec.graph.edges = (1u << scale) * 4;
  spec.graph.max_weight = 6;
  spec.graph.graph_seed = 7;  // reproduces the graph built above
  spec.graph.compute_gap_cycles = 4;
  noc::NocSystem noc(healthy);
  auto gen = make_generator(spec, cfg, healthy);
  const WorkloadRunResult wave = run_workload_traffic(noc, *gen, 2000);
  std::printf("%-11s %8llu injections | latency p50/p95/p99 = "
              "%llu/%llu/%llu cycles | trace digest %08x\n",
              "GraphWave",
              static_cast<unsigned long long>(wave.injections),
              static_cast<unsigned long long>(wave.report.p50_latency),
              static_cast<unsigned long long>(wave.report.p95_latency),
              static_cast<unsigned long long>(wave.report.p99_latency),
              wave.delivery_digest);

  std::printf("\nall kernels verified against sequential references\n");
  return 0;
}
