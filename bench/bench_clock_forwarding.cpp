// Experiments F3/F4 — Sec. IV: clock forwarding over faulty tile arrays
// (Fig. 4's 8x8 example plus Monte Carlo coverage sweeps) and the
// duty-cycle distortion study behind the inverted-forwarding decision.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wsp/clock/duty_cycle.hpp"
#include "wsp/clock/forwarding.hpp"
#include "wsp/clock/skew.hpp"

namespace {

using namespace wsp;
using namespace wsp::clock;

void print_fig4_map() {
  std::printf("== Figure 4: clock forwarding with faulty tiles (8x8) ==\n");
  std::printf("paper: 6 faults; all tiles but one (boxed in on all four "
              "sides) receive the clock\n\n");
  const Fig4Scenario sc = make_fig4_scenario();
  const ForwardingPlan plan = simulate_forwarding(sc.faults, {sc.generator});
  const TileGrid& grid = sc.faults.grid();
  std::printf("legend: G generator, . clocked, X faulty, ? healthy-unclocked\n");
  for (int y = grid.height() - 1; y >= 0; --y) {
    for (int x = 0; x < grid.width(); ++x) {
      const TileCoord c{x, y};
      char ch = '.';
      if (sc.faults.is_faulty(c)) ch = 'X';
      else if (c == sc.generator) ch = 'G';
      else if (!plan.tiles[grid.index_of(c)].reached) ch = '?';
      std::printf("%c ", ch);
    }
    std::printf("\n");
  }
  std::printf("clocked %zu / 64, unreached healthy %zu (expected 1)\n\n",
              plan.reached_count, plan.unreached_healthy_count);
}

void print_coverage_sweep() {
  std::printf("-- clock coverage vs fault count (32x32 wafer, 50 maps each) --\n");
  std::printf("%8s %18s %22s\n", "faults", "mean unclocked", "maps fully clocked");
  const TileGrid grid(32, 32);
  Rng rng(7);
  for (const std::size_t n : {1u, 2u, 5u, 10u, 20u, 50u, 100u}) {
    double unreached = 0.0;
    int full = 0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
      const FaultMap faults = FaultMap::random_with_count(grid, n, rng);
      // The paper allows "one or multiple edge tiles" to generate; use
      // every healthy edge tile so only true enclaves stay unclocked.
      std::vector<TileCoord> gens;
      grid.for_each([&](TileCoord c) {
        if (grid.is_edge(c) && faults.is_healthy(c)) gens.push_back(c);
      });
      if (gens.empty()) continue;
      const ForwardingPlan plan = simulate_forwarding(faults, gens);
      unreached += static_cast<double>(plan.unreached_healthy_count);
      if (plan.unreached_healthy_count == 0) ++full;
    }
    std::printf("%8zu %18.3f %19d/%d\n", n, unreached / trials, full, trials);
  }
  std::printf("\n");
}

void print_duty_cycle_study() {
  std::printf("-- duty-cycle distortion along the forwarding chain --\n");
  std::printf("paper: 5%%/tile distortion kills a naive clock within ~10 "
              "tiles; inverted forwarding alternates it; DCC cleans up\n\n");
  std::printf("%-38s %12s %14s\n", "scheme", "alive@62hops",
              "worst |duty-50%|");
  struct Case {
    const char* name;
    bool invert;
    bool dcc;
  };
  for (const Case c : {Case{"naive (no inversion, no DCC)", false, false},
                       Case{"inverted forwarding only", true, false},
                       Case{"DCC only", false, true},
                       Case{"inverted + DCC (the design)", true, true}}) {
    DutyCycleOptions opt;
    opt.inverted_forwarding = c.invert;
    opt.dcc_enabled = c.dcc;
    const DutyCycleTrace tr = propagate_duty_cycle(62, opt);
    char buf[32];
    if (tr.clock_alive)
      std::snprintf(buf, sizeof buf, "yes");
    else
      std::snprintf(buf, sizeof buf, "dies@%d", tr.died_at_hop);
    std::printf("%-38s %12s %13.1f%%\n", c.name, buf,
                100.0 * tr.worst_excursion);
  }
  std::printf("\n");
}

void BM_ForwardingFullWafer(benchmark::State& state) {
  const TileGrid grid(32, 32);
  Rng rng(3);
  const FaultMap faults =
      FaultMap::random_with_count(grid, static_cast<std::size_t>(state.range(0)), rng);
  std::vector<TileCoord> gens{{0, 16}};
  for (auto _ : state)
    benchmark::DoNotOptimize(simulate_forwarding(faults, gens).reached_count);
}
BENCHMARK(BM_ForwardingFullWafer)->Arg(0)->Arg(20)->Unit(benchmark::kMicrosecond);

}  // namespace

void print_skew_study() {
  std::printf("-- forwarding skew (footnote 3: why the links are "
              "asynchronous) --\n");
  const TileGrid grid(32, 32);
  const FaultMap healthy(grid);
  const double hop_delay = 150e-12;  // buffers + mux + I/O per tile
  struct Case {
    const char* name;
    std::vector<TileCoord> gens;
  };
  for (const Case& c :
       {Case{"1 corner generator", {{0, 0}}},
        Case{"4 corner generators", {{0, 0}, {31, 0}, {0, 31}, {31, 31}}}}) {
    const ForwardingPlan plan = simulate_forwarding(healthy, c.gens);
    const SkewReport skew = analyze_skew(plan, grid, hop_delay);
    std::printf("%-22s adjacent delta <=%d hop (%.0f ps) | depth %d | "
                "global spread %.2f ns | half-cycle-offset links %.0f%%\n",
                c.name, skew.max_adjacent_depth_delta,
                skew.worst_skew_s * 1e12, skew.max_depth,
                skew.global_spread_s * 1e9,
                100.0 * skew.odd_parity_links / skew.links_measured);
  }
  std::printf("(adjacent tiles are provably <=1 hop apart — the race picks "
              "the earliest clock, so depth = graph distance; async FIFOs "
              "absorb the residual half-cycle offsets)\n\n");
}

int main(int argc, char** argv) {
  print_fig4_map();
  print_coverage_sweep();
  print_duty_cycle_study();
  print_skew_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
