// Experiment F2 — Figure 2: edge power delivery and the voltage droop
// profile from 2.5 V at the wafer edge to ~1.4 V at the center at peak
// draw, plus an activity sweep, solver micro-benchmarks, and the parallel
// red-black solver scaling study (BENCH_pdn_droop.json).
//
// Exit status is non-zero if the parallel solve diverges from the serial
// baseline by even one bit — CI runs this with --quick and fails the build
// on divergence.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace {

using namespace wsp;
using namespace wsp::pdn;

void print_fig2() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  WaferPdn pdn(cfg, {});
  const PdnReport r = pdn.solve_uniform(1.0);

  std::printf("== Figure 2: edge power delivery, voltage droop at peak draw ==\n");
  std::printf("paper: edge tiles receive 2.5 V; center tiles ~1.4 V; ~290 A\n\n");
  std::printf("model: edge %.3f V | center %.3f V | supply current %.1f A | "
              "input power %.0f W\n",
              r.max_supply_v, r.min_supply_v, r.total_supply_current_a,
              r.total_input_power_w);
  std::printf("plane IR loss %.1f W | LDO loss %.1f W | delivered %.1f W | "
              "end-to-end efficiency %.1f%%\n",
              r.plane_loss_w, r.ldo_loss_w, r.delivered_power_w,
              100.0 * r.efficiency);
  std::printf("tiles out of regulation: %d of %d\n\n",
              r.tiles_out_of_regulation, cfg.total_tiles());

  std::printf("-- supply voltage along the horizontal mid-line (V) --\n");
  const auto line = WaferPdn::midline_profile(r, cfg.grid());
  for (std::size_t x = 0; x < line.size(); ++x) {
    std::printf("%5.3f%s", line[x], (x + 1) % 8 == 0 ? "\n" : " ");
  }
  std::printf("\n-- mean supply voltage by distance-to-edge ring (V) --\n");
  const auto rings = WaferPdn::ring_profile(r, cfg.grid());
  for (std::size_t d = 0; d < rings.size(); ++d)
    std::printf("ring %2zu: %5.3f\n", d, rings[d]);

  std::printf("\n-- droop vs. activity factor --\n");
  std::printf("%8s %10s %10s %12s\n", "activity", "center V", "current A",
              "efficiency");
  for (const double a : {0.25, 0.5, 0.75, 1.0}) {
    WaferPdn sweep(cfg, {});
    const PdnReport s = sweep.solve_uniform(a);
    std::printf("%8.2f %10.3f %10.1f %11.1f%%\n", a, s.min_supply_v,
                s.total_supply_current_a, 100.0 * s.efficiency);
  }
  std::printf("\n");
}

/// Flattens the per-tile voltages of a PDN report for bitwise comparison.
std::vector<double> voltage_vector(const PdnReport& r) {
  std::vector<double> v;
  v.reserve(r.tiles.size() * 2);
  for (const TilePower& t : r.tiles) {
    v.push_back(t.supply_v);
    v.push_back(t.regulated_v);
  }
  return v;
}

/// Red-black parallel solver scaling on the 64x64 wafer PDN solve: wall
/// time and speedup per thread count, plus the determinism check — the
/// voltage vector must be bit-identical at every thread count.
int run_parallel_scaling(bool quick) {
  wsp::bench::JsonReporter json("pdn_droop");
  const int repeats = quick ? 2 : 5;

  SystemConfig cfg = SystemConfig::reduced(64, 64);
  WaferPdnOptions opt;
  opt.nodes_per_tile = 1;  // 64x64 solver nodes

  std::printf("== parallel red-black SOR scaling (64x64 wafer PDN solve) ==\n");
  std::printf("%8s %12s %10s %12s\n", "threads", "wall ms", "speedup",
              "identical");

  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  std::vector<double> baseline_v;
  double serial_ms = 0.0;
  int rc = 0;
  for (const int threads : thread_counts) {
    exec::set_shared_threads(threads);
    std::vector<double> volts;
    const double ms = wsp::bench::min_wall_ms(
        [&] {
          WaferPdn pdn(cfg, opt);
          volts = voltage_vector(pdn.solve_uniform(1.0));
        },
        repeats, 1);
    if (threads == 1) {
      serial_ms = ms;
      baseline_v = volts;
    }
    const bool identical = volts == baseline_v;  // exact, bit-for-bit
    if (!identical) rc = 1;
    std::printf("%8d %12.2f %9.2fx %12s\n", threads, ms,
                serial_ms > 0 ? serial_ms / ms : 0.0,
                identical ? "yes" : "NO — DIVERGED");

    wsp::bench::Measurement m;
    m.name = "wafer_pdn_solve_64x64";
    m.wall_ms = ms;
    m.threads = threads;
    m.speedup_vs_serial = serial_ms > 0 ? serial_ms / ms : 0.0;
    json.add(m);
  }
  exec::set_shared_threads(0);  // back to the environment default

  // Full-prototype solve at the default thread count, for cross-PR
  // tracking of the headline Fig. 2 experiment.
  {
    const SystemConfig proto = SystemConfig::paper_prototype();
    wsp::bench::Measurement m;
    m.name = "wafer_pdn_solve_paper_prototype";
    m.threads = exec::shared_threads();
    m.wall_ms = wsp::bench::min_wall_ms(
        [&] {
          WaferPdn pdn(proto, {});
          benchmark::DoNotOptimize(pdn.solve_uniform(1.0).min_supply_v);
        },
        repeats, 1);
    json.add(m);
  }

  if (rc != 0)
    std::fprintf(stderr,
                 "FAIL: parallel PDN solve diverged from the serial "
                 "baseline\n");
  std::printf("\n");
  json.write();
  return rc;
}

void BM_SolveFullWafer(benchmark::State& state) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  WaferPdnOptions opt;
  opt.nodes_per_tile = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WaferPdn pdn(cfg, opt);
    benchmark::DoNotOptimize(pdn.solve_uniform(1.0).min_supply_v);
  }
}
BENCHMARK(BM_SolveFullWafer)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wsp::bench::consume_quick_flag(&argc, argv);
  if (!quick) print_fig2();
  const int rc = run_parallel_scaling(quick);
  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return rc;
}
