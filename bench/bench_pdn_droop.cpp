// Experiment F2 — Figure 2: edge power delivery and the voltage droop
// profile from 2.5 V at the wafer edge to ~1.4 V at the center at peak
// draw, plus an activity sweep, solver micro-benchmarks, the parallel
// red-black solver scaling study, the multigrid-vs-SOR solver suite, and
// the batched multi-RHS suite (all recorded in BENCH_pdn_droop.json).
//
// Exit status is non-zero on any divergence: a parallel solve that differs
// from the serial baseline by even one bit, a multigrid solve that differs
// across thread counts or disagrees with SOR beyond tolerance, or a
// solve_batch result that differs from solving the same right-hand sides
// sequentially.  CI runs this with --quick and fails the build on any of
// those.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/pdn/resistive_grid.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace {

using namespace wsp;
using namespace wsp::pdn;

void print_fig2() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  WaferPdn pdn(cfg, {});
  const PdnReport r = pdn.solve_uniform(1.0);

  std::printf("== Figure 2: edge power delivery, voltage droop at peak draw ==\n");
  std::printf("paper: edge tiles receive 2.5 V; center tiles ~1.4 V; ~290 A\n\n");
  std::printf("model: edge %.3f V | center %.3f V | supply current %.1f A | "
              "input power %.0f W\n",
              r.max_supply_v, r.min_supply_v, r.total_supply_current_a,
              r.total_input_power_w);
  std::printf("plane IR loss %.1f W | LDO loss %.1f W | delivered %.1f W | "
              "end-to-end efficiency %.1f%%\n",
              r.plane_loss_w, r.ldo_loss_w, r.delivered_power_w,
              100.0 * r.efficiency);
  std::printf("tiles out of regulation: %d of %d\n\n",
              r.tiles_out_of_regulation, cfg.total_tiles());

  std::printf("-- supply voltage along the horizontal mid-line (V) --\n");
  const auto line = WaferPdn::midline_profile(r, cfg.grid());
  for (std::size_t x = 0; x < line.size(); ++x) {
    std::printf("%5.3f%s", line[x], (x + 1) % 8 == 0 ? "\n" : " ");
  }
  std::printf("\n-- mean supply voltage by distance-to-edge ring (V) --\n");
  const auto rings = WaferPdn::ring_profile(r, cfg.grid());
  for (std::size_t d = 0; d < rings.size(); ++d)
    std::printf("ring %2zu: %5.3f\n", d, rings[d]);

  std::printf("\n-- droop vs. activity factor --\n");
  std::printf("%8s %10s %10s %12s\n", "activity", "center V", "current A",
              "efficiency");
  for (const double a : {0.25, 0.5, 0.75, 1.0}) {
    WaferPdn sweep(cfg, {});
    const PdnReport s = sweep.solve_uniform(a);
    std::printf("%8.2f %10.3f %10.1f %11.1f%%\n", a, s.min_supply_v,
                s.total_supply_current_a, 100.0 * s.efficiency);
  }
  std::printf("\n");
}

/// Flattens the per-tile voltages of a PDN report for bitwise comparison.
std::vector<double> voltage_vector(const PdnReport& r) {
  std::vector<double> v;
  v.reserve(r.tiles.size() * 2);
  for (const TilePower& t : r.tiles) {
    v.push_back(t.supply_v);
    v.push_back(t.regulated_v);
  }
  return v;
}

/// Red-black parallel solver scaling on the 64x64 wafer PDN solve: wall
/// time and speedup per thread count, plus the determinism check — the
/// voltage vector must be bit-identical at every thread count.
int run_parallel_scaling(bool quick, wsp::bench::JsonReporter& json) {
  const int repeats = quick ? 2 : 5;

  SystemConfig cfg = SystemConfig::reduced(64, 64);
  WaferPdnOptions opt;
  opt.nodes_per_tile = 1;  // 64x64 solver nodes

  std::printf("== parallel red-black SOR scaling (64x64 wafer PDN solve) ==\n");
  std::printf("%8s %12s %10s %12s\n", "threads", "wall ms", "speedup",
              "identical");

  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  std::vector<double> baseline_v;
  double serial_ms = 0.0;
  int rc = 0;
  for (const int threads : thread_counts) {
    exec::set_shared_threads(threads);
    std::vector<double> volts;
    const double ms = wsp::bench::min_wall_ms(
        [&] {
          WaferPdn pdn(cfg, opt);
          volts = voltage_vector(pdn.solve_uniform(1.0));
        },
        repeats, 1);
    if (threads == 1) {
      serial_ms = ms;
      baseline_v = volts;
    }
    const bool identical = volts == baseline_v;  // exact, bit-for-bit
    if (!identical) rc = 1;
    std::printf("%8d %12.2f %9.2fx %12s\n", threads, ms,
                serial_ms > 0 ? serial_ms / ms : 0.0,
                identical ? "yes" : "NO — DIVERGED");

    wsp::bench::Measurement m;
    m.name = "wafer_pdn_solve_64x64";
    m.wall_ms = ms;
    m.threads = threads;
    m.speedup_vs_serial = serial_ms > 0 ? serial_ms / ms : 0.0;
    json.add(m);
  }
  exec::set_shared_threads(0);  // back to the environment default

  // Full-prototype solve at the default thread count, for cross-PR
  // tracking of the headline Fig. 2 experiment.
  {
    const SystemConfig proto = SystemConfig::paper_prototype();
    wsp::bench::Measurement m;
    m.name = "wafer_pdn_solve_paper_prototype";
    m.threads = exec::shared_threads();
    m.wall_ms = wsp::bench::min_wall_ms(
        [&] {
          WaferPdn pdn(proto, {});
          benchmark::DoNotOptimize(pdn.solve_uniform(1.0).min_supply_v);
        },
        repeats, 1);
    json.add(m);
  }

  if (rc != 0)
    std::fprintf(stderr,
                 "FAIL: parallel PDN solve diverged from the serial "
                 "baseline\n");
  std::printf("\n");
  return rc;
}

/// Synthetic 64x64 power plane mirroring the wafer solve's structure: the
/// edge ring pinned at the 2.5 V edge supply, a uniform draw everywhere
/// else.  Solver-level (no WaferPdn wrapper) so the rows isolate the
/// algorithms from report extraction.
ResistiveGrid make_plane(int n) {
  ResistiveGrid g(n, n);
  g.fill_conductances(5.0, 5.0);
  for (int i = 0; i < n; ++i) {
    g.set_dirichlet(i, 0, 2.5);
    g.set_dirichlet(i, n - 1, 2.5);
    g.set_dirichlet(0, i, 2.5);
    g.set_dirichlet(n - 1, i, 2.5);
  }
  for (int y = 1; y < n - 1; ++y)
    for (int x = 1; x < n - 1; ++x) g.set_current_sink(x, y, 0.02);
  return g;
}

/// Multigrid vs SOR on the synthetic 64x64 plane: warm and cold wall time,
/// iteration counts and sweep-equivalent cost at one thread, plus the
/// correctness gates — the two methods must agree within tolerance and the
/// multigrid solve must be bit-identical at every thread count.
int run_multigrid_suite(bool quick, wsp::bench::JsonReporter& json) {
  const int repeats = quick ? 3 : 7;
  int rc = 0;

  exec::set_shared_threads(1);
  ResistiveGrid sor_grid = make_plane(64);
  ResistiveGrid mg_grid = make_plane(64);

  SolverConfig sor_cfg;  // defaults: red-black SOR, tol 1e-7
  SolverConfig mg_cfg;
  mg_cfg.method = SolverMethod::Multigrid;

  std::printf("== multigrid vs SOR (64x64 plane, 1 thread, tol %.0e) ==\n",
              sor_cfg.tol);

  SolveStats sor_stats, mg_stats;
  const double sor_ms = wsp::bench::min_wall_ms(
      [&] {
        sor_grid.reset_voltages(0.0);
        sor_stats = sor_grid.solve(sor_cfg);
      },
      repeats, 1);
  {
    wsp::bench::Measurement m;
    m.name = "pdn_solver_sor_64x64";
    m.wall_ms = sor_ms;
    m.threads = 1;
    m.speedup_vs_serial = 1.0;  // the baseline the multigrid rows beat
    json.add(m);
  }
  const double mg_ms = json.measure(
      "pdn_solver_multigrid_64x64", 1,
      [&] {
        mg_grid.reset_voltages(0.0);
        mg_stats = mg_grid.solve(mg_cfg);
      },
      repeats, 1, 1, sor_ms);
  // Cold start: grid construction plus hierarchy build plus the solve —
  // what a one-shot caller pays.  No serial counterpart.
  const double cold_ms = json.measure(
      "pdn_solver_multigrid_cold_64x64", 1,
      [&] {
        ResistiveGrid g = make_plane(64);
        benchmark::DoNotOptimize(g.solve(mg_cfg).converged);
      },
      repeats, 1);

  std::printf("%12s %10s %12s %12s\n", "method", "wall ms", "iterations",
              "sweep-equiv");
  std::printf("%12s %10.3f %12d %12.1f\n", "sor", sor_ms, sor_stats.iterations,
              sor_stats.fine_sweep_equivalents);
  std::printf("%12s %10.3f %12d %12.1f\n", "multigrid", mg_ms,
              mg_stats.iterations, mg_stats.fine_sweep_equivalents);
  std::printf("%12s %10.3f %12s %12s\n", "mg (cold)", cold_ms, "-", "-");
  std::printf("speedup %.2fx wall, %.1fx fewer sweep-equivalents\n",
              sor_ms / mg_ms,
              sor_stats.fine_sweep_equivalents /
                  mg_stats.fine_sweep_equivalents);

  if (!sor_stats.converged || !mg_stats.converged) {
    std::fprintf(stderr, "FAIL: solver did not converge (sor %d, mg %d)\n",
                 sor_stats.converged, mg_stats.converged);
    rc = 1;
  }
  if (mg_stats.iterations > 12) {
    std::fprintf(stderr,
                 "FAIL: multigrid took %d cycles — convergence should be "
                 "grid-size-independent (~6-8 cycles)\n",
                 mg_stats.iterations);
    rc = 1;
  }

  // Voltage agreement: both methods solved tight must land on the same
  // solution well inside the operating tolerance.
  SolverConfig tight_sor = sor_cfg;
  tight_sor.tol = 1e-9;
  SolverConfig tight_mg = mg_cfg;
  tight_mg.tol = 1e-9;
  sor_grid.reset_voltages(0.0);
  sor_grid.solve(tight_sor);
  mg_grid.reset_voltages(0.0);
  mg_grid.solve(tight_mg);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < sor_grid.node_count(); ++i)
    max_diff = std::max(
        max_diff, std::fabs(sor_grid.voltages()[i] - mg_grid.voltages()[i]));
  std::printf("multigrid-vs-SOR max voltage diff at tol 1e-9: %.2e V\n",
              max_diff);
  if (!(max_diff <= 1e-7)) {
    std::fprintf(stderr,
                 "FAIL: multigrid disagrees with SOR by %.3e V (> 1e-7)\n",
                 max_diff);
    rc = 1;
  }

  // Thread determinism: the multigrid voltage vector must be bit-identical
  // at every thread count.
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 8};
  std::vector<double> mg_baseline;
  for (const int threads : thread_counts) {
    exec::set_shared_threads(threads);
    mg_grid.reset_voltages(0.0);
    mg_grid.solve(mg_cfg);
    if (threads == thread_counts.front()) {
      mg_baseline = mg_grid.voltages();
    } else if (mg_grid.voltages() != mg_baseline) {
      std::fprintf(stderr,
                   "FAIL: multigrid solve at %d threads diverged from the "
                   "1-thread result\n",
                   threads);
      rc = 1;
    }
  }
  exec::set_shared_threads(0);
  std::printf("multigrid thread determinism: %s\n\n",
              rc == 0 ? "bit-identical" : "DIVERGED");
  return rc;
}

/// solve_batch suite: 32 distinct power maps against one 64x64 topology,
/// solved sequentially and through solve_batch.  The batch result must be
/// bit-identical to the sequential reference; walls are recorded so the
/// amortization (one hierarchy, RHS fanned over the pool) is tracked
/// across PRs.
int run_batch_suite(bool quick, wsp::bench::JsonReporter& json) {
  const int repeats = quick ? 2 : 5;
  const int kRhs = 32;
  int rc = 0;

  exec::set_shared_threads(1);
  ResistiveGrid grid = make_plane(64);
  const std::size_t nodes = grid.node_count();

  SolverConfig cfg;
  cfg.method = SolverMethod::Multigrid;

  // Distinct right-hand sides: the base draw scaled per map, plus a moving
  // hotspot so no two maps share a solution.
  std::vector<std::vector<double>> sinks(kRhs);
  for (int m = 0; m < kRhs; ++m) {
    sinks[m] = grid.current_sinks();
    const double scale = 0.5 + static_cast<double>(m) / kRhs;
    for (double& s : sinks[m]) s *= scale;
    const int hx = 8 + (m * 3) % 48;
    const int hy = 8 + (m * 5) % 48;
    sinks[m][grid.index(hx, hy)] += 0.15;
  }

  std::printf("== solve_batch (%d RHS, 64x64 plane, multigrid) ==\n", kRhs);

  std::vector<std::vector<double>> seq_v(kRhs);
  const double seq_ms = wsp::bench::min_wall_ms(
      [&] {
        for (int m = 0; m < kRhs; ++m) {
          grid.set_current_sinks(sinks[m]);
          grid.reset_voltages(0.0);
          grid.solve(cfg);
          seq_v[m] = grid.voltages();
        }
      },
      repeats, 1);
  {
    wsp::bench::Measurement m;
    m.name = "pdn_solve_sequential_32rhs_64x64";
    m.wall_ms = seq_ms;
    m.iterations = kRhs;
    m.threads = 1;
    m.speedup_vs_serial = 1.0;
    json.add(m);
  }

  std::vector<std::vector<double>> batch_v(kRhs, std::vector<double>(nodes));
  std::vector<SolveStats> stats(kRhs);
  std::vector<RhsView> views(kRhs);
  const double batch_ms = json.measure(
      "pdn_solve_batch_32rhs_64x64", exec::shared_threads(),
      [&] {
        for (int m = 0; m < kRhs; ++m) {
          std::fill(batch_v[m].begin(), batch_v[m].end(), 0.0);
          views[m] = RhsView{sinks[m], batch_v[m]};
        }
        grid.solve_batch(views, stats, cfg);
      },
      repeats, 1, kRhs, seq_ms);

  bool identical = true;
  bool converged = true;
  for (int m = 0; m < kRhs; ++m) {
    if (batch_v[m] != seq_v[m]) identical = false;
    if (!stats[m].converged) converged = false;
  }
  std::printf("sequential %8.2f ms | batch %8.2f ms (%.2fx) | %s\n\n",
              seq_ms, batch_ms, seq_ms / batch_ms,
              identical ? "bit-identical" : "DIVERGED");
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: solve_batch diverged from sequential solves\n");
    rc = 1;
  }
  if (!converged) {
    std::fprintf(stderr, "FAIL: solve_batch RHS did not converge\n");
    rc = 1;
  }
  exec::set_shared_threads(0);
  return rc;
}

void BM_SolveFullWafer(benchmark::State& state) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  WaferPdnOptions opt;
  opt.nodes_per_tile = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WaferPdn pdn(cfg, opt);
    benchmark::DoNotOptimize(pdn.solve_uniform(1.0).min_supply_v);
  }
}
BENCHMARK(BM_SolveFullWafer)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wsp::bench::consume_quick_flag(&argc, argv);
  if (!quick) print_fig2();
  wsp::bench::JsonReporter json("pdn_droop");
  int rc = run_parallel_scaling(quick, json);
  rc |= run_multigrid_suite(quick, json);
  rc |= run_batch_suite(quick, json);
  json.write();
  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return rc;
}
