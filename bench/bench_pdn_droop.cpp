// Experiment F2 — Figure 2: edge power delivery and the voltage droop
// profile from 2.5 V at the wafer edge to ~1.4 V at the center at peak
// draw, plus an activity sweep and solver micro-benchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wsp/pdn/wafer_pdn.hpp"

namespace {

using namespace wsp;
using namespace wsp::pdn;

void print_fig2() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  WaferPdn pdn(cfg, {});
  const PdnReport r = pdn.solve_uniform(1.0);

  std::printf("== Figure 2: edge power delivery, voltage droop at peak draw ==\n");
  std::printf("paper: edge tiles receive 2.5 V; center tiles ~1.4 V; ~290 A\n\n");
  std::printf("model: edge %.3f V | center %.3f V | supply current %.1f A | "
              "input power %.0f W\n",
              r.max_supply_v, r.min_supply_v, r.total_supply_current_a,
              r.total_input_power_w);
  std::printf("plane IR loss %.1f W | LDO loss %.1f W | delivered %.1f W | "
              "end-to-end efficiency %.1f%%\n",
              r.plane_loss_w, r.ldo_loss_w, r.delivered_power_w,
              100.0 * r.efficiency);
  std::printf("tiles out of regulation: %d of %d\n\n",
              r.tiles_out_of_regulation, cfg.total_tiles());

  std::printf("-- supply voltage along the horizontal mid-line (V) --\n");
  const auto line = WaferPdn::midline_profile(r, cfg.grid());
  for (std::size_t x = 0; x < line.size(); ++x) {
    std::printf("%5.3f%s", line[x], (x + 1) % 8 == 0 ? "\n" : " ");
  }
  std::printf("\n-- mean supply voltage by distance-to-edge ring (V) --\n");
  const auto rings = WaferPdn::ring_profile(r, cfg.grid());
  for (std::size_t d = 0; d < rings.size(); ++d)
    std::printf("ring %2zu: %5.3f\n", d, rings[d]);

  std::printf("\n-- droop vs. activity factor --\n");
  std::printf("%8s %10s %10s %12s\n", "activity", "center V", "current A",
              "efficiency");
  for (const double a : {0.25, 0.5, 0.75, 1.0}) {
    WaferPdn sweep(cfg, {});
    const PdnReport s = sweep.solve_uniform(a);
    std::printf("%8.2f %10.3f %10.1f %11.1f%%\n", a, s.min_supply_v,
                s.total_supply_current_a, 100.0 * s.efficiency);
  }
  std::printf("\n");
}

void BM_SolveFullWafer(benchmark::State& state) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  WaferPdnOptions opt;
  opt.nodes_per_tile = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WaferPdn pdn(cfg, opt);
    benchmark::DoNotOptimize(pdn.solve_uniform(1.0).min_supply_v);
  }
}
BENCHMARK(BM_SolveFullWafer)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
