// Runtime-resilience experiments: Monte Carlo degradation campaigns (how
// much usable wafer and pair reachability survive bursts of runtime
// faults), clock re-selection latency after mid-tree tile deaths, and the
// cycle cost of arming the NoC timeout/retry machinery.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "wsp/clock/forwarding.hpp"
#include "wsp/clock/recovery.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/link_integrity.hpp"
#include "wsp/noc/traffic.hpp"
#include "wsp/resilience/campaign.hpp"

namespace {

using namespace wsp;
using namespace wsp::resilience;

/// Collapses a trial report into a comparison fingerprint covering every
/// field that could expose a determinism break (order-dependent counters,
/// trajectories, per-event outcomes).
std::uint64_t fingerprint(const DegradationReport& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(r.initial_usable);
  mix(r.final_usable);
  mix(r.total_cycles);
  mix(r.mesh_dropped);
  mix(r.noc_stats.issued);
  mix(r.noc_stats.completed);
  mix(r.noc_stats.lost);
  mix(r.noc_stats.timeouts);
  mix(r.events.size());
  for (const EventOutcome& e : r.events) {
    mix(e.applied_cycle);
    mix(e.usable_after);
    mix(e.recovery_cycles);
    mix(static_cast<std::uint64_t>(e.recovered));
  }
  for (const TrajectoryPoint& p : r.trajectory) {
    mix(p.cycle);
    mix(p.usable_tiles);
  }
  return h;
}

std::vector<std::uint64_t> fingerprints(
    const std::vector<DegradationReport>& reports) {
  std::vector<std::uint64_t> out;
  out.reserve(reports.size());
  for (const DegradationReport& r : reports) out.push_back(fingerprint(r));
  return out;
}

/// Concurrent Monte Carlo scaling: the same campaign, trials dispatched
/// over 1/2/8 threads, wall time + the bit-identity check on the reports.
int run_trial_scaling(bool quick) {
  wsp::bench::JsonReporter json("resilience");
  const int repeats = quick ? 2 : 3;
  const int trials = quick ? 4 : 8;

  CampaignOptions o;
  o.config = SystemConfig::reduced(16, 16);
  o.seed = 11;
  o.run_cycles = quick ? 600 : 1200;
  o.fault_horizon = quick ? 400 : 800;
  o.injection_rate = 0.01;
  o.mix.tile_deaths = 4;
  o.mix.link_failures = 2;
  o.mix.ldo_brownouts = 1;
  const DegradationCampaign campaign(o);

  std::printf("== concurrent Monte Carlo campaign scaling (16x16, %d "
              "trials) ==\n",
              trials);
  std::printf("%8s %12s %10s %12s\n", "threads", "wall ms", "speedup",
              "identical");

  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 8};
  std::vector<std::uint64_t> baseline;
  double serial_ms = 0.0;
  int rc = 0;
  for (const int threads : thread_counts) {
    exec::set_shared_threads(threads);
    std::vector<std::uint64_t> prints;
    const double ms = wsp::bench::min_wall_ms(
        [&] { prints = fingerprints(campaign.run_trials(trials)); },
        repeats, 1);
    if (threads == 1) {
      serial_ms = ms;
      baseline = prints;
    }
    const bool identical = prints == baseline;
    if (!identical) rc = 1;
    std::printf("%8d %12.2f %9.2fx %12s\n", threads, ms,
                serial_ms > 0 ? serial_ms / ms : 0.0,
                identical ? "yes" : "NO — DIVERGED");

    wsp::bench::Measurement m;
    m.name = "campaign_run_trials_16x16";
    m.wall_ms = ms;
    m.iterations = trials;
    m.threads = threads;
    m.speedup_vs_serial = serial_ms > 0 ? serial_ms / ms : 0.0;
    json.add(m);
  }
  exec::set_shared_threads(0);

  // Single-trial wall time at the default thread count for cross-PR
  // tracking.
  {
    wsp::bench::Measurement m;
    m.name = "campaign_single_trial_16x16";
    m.threads = exec::shared_threads();
    m.wall_ms = wsp::bench::min_wall_ms(
        [&] { benchmark::DoNotOptimize(campaign.run().final_usable); },
        repeats, 1);
    json.add(m);
  }

  if (rc != 0)
    std::fprintf(stderr,
                 "FAIL: threaded run_trials diverged from the serial "
                 "baseline\n");
  std::printf("\n");
  json.write();
  return rc;
}

void print_campaign_sweep() {
  std::printf("== Monte Carlo degradation campaigns (16x16 wafer section, "
              "5 trials each) ==\n");
  std::printf("%12s %14s %16s %16s %12s %8s %8s\n", "tile deaths",
              "usable frac", "reachability %", "recovery (cyc)", "lost/issued",
              "SSI", "drained");
  for (const std::size_t deaths : {1u, 3u, 6u, 12u}) {
    CampaignOptions o;
    o.config = SystemConfig::reduced(16, 16);
    o.seed = 1;
    o.run_cycles = 1500;
    o.fault_horizon = 1000;
    o.injection_rate = 0.01;
    o.mix.tile_deaths = deaths;
    o.mix.link_failures = deaths / 2;
    o.mix.ldo_brownouts = 1;
    o.mix.packet_corruptions = 2;
    const CampaignSummary s =
        summarize(DegradationCampaign(o).run_trials(5));
    std::printf("%12zu %14.3f %16.2f %16.1f %12.4f %5d/5 %6d/5\n", deaths,
                s.mean_final_usable_fraction, s.mean_pair_reachability_pct,
                s.mean_recovery_cycles, s.lost_per_issued,
                s.single_system_image_survived, s.fully_drained);
  }
  std::printf("\n");
}

void print_clock_recovery_latency() {
  std::printf("-- clock re-selection after an interior tile death (single "
              "generator) --\n");
  std::printf("%10s %14s %14s %14s\n", "array", "invalidated", "relatched",
              "wave steps");
  for (const int n : {8, 16, 32}) {
    const TileGrid grid(n, n);
    FaultMap fm(grid);
    const std::vector<TileCoord> gens = {{0, 0}};
    const clock::ForwardingPlan plan = clock::simulate_forwarding(fm, gens);
    fm.set_faulty({n / 2, n / 2});
    const clock::ReclockReport r =
        clock::reselect_after_faults(plan, fm, gens);
    std::printf("%7dx%-2d %14zu %14zu %14d\n", n, n, r.invalidated.size(),
                r.relatched.size(), r.relatch_steps);
  }
  std::printf("\n");
}

/// Hop-level CRC/NACK recovery vs the end-to-end timeout path: the same
/// seeded traffic over the same noisy links, with link retransmission on
/// and off.  Hop repair costs ~2 link latencies; the timeout path costs a
/// full response deadline plus a replayed round trip — the mean and tail
/// latencies (and the loss column) make the gap visible at every BER.
void print_ber_sweep() {
  std::printf("== link-integrity BER sweep (12x12, uniform traffic, "
              "hop retransmit vs timeout-only recovery) ==\n");
  std::printf("%10s %6s %12s %10s %10s %8s %10s %10s\n", "BER", "retx",
              "crc_detect", "retrans", "timeouts", "lost", "mean lat",
              "p99 lat");
  for (const double ber : {0.0, 1e-5, 1e-4, 1e-3}) {
    for (const bool retx : {true, false}) {
      const TileGrid grid(12, 12);
      noc::NocOptions opt;
      opt.response_timeout = 400;
      opt.mesh.integrity.enabled = true;
      opt.mesh.integrity.retransmit = retx;
      noc::NocSystem noc(FaultMap(grid), opt);
      noc.set_link_ber(noc::LinkBerMap::uniform(grid, ber));

      Rng rng(7);
      std::vector<noc::CompletedTransaction> done;
      for (int c = 0; c < 3000; ++c) {
        grid.for_each([&](TileCoord src) {
          if (!rng.bernoulli(0.02)) return;
          const TileCoord dst = grid.coord_of(rng.below(grid.tile_count()));
          if (!(dst == src))
            (void)noc.issue(src, dst, noc::PacketType::ReadRequest);
        });
        noc.step(done);
      }
      noc.drain(done);

      std::vector<std::uint64_t> lat;
      lat.reserve(done.size());
      for (const auto& t : done) lat.push_back(t.latency());
      std::sort(lat.begin(), lat.end());
      const std::uint64_t p99 =
          lat.empty() ? 0 : lat[lat.size() * 99 / 100];
      const noc::NocStats st = noc.stats();
      std::printf("%10.0e %6s %12llu %10llu %10llu %8llu %10.1f %10llu\n",
                  ber, retx ? "on" : "off",
                  static_cast<unsigned long long>(st.crc_detected),
                  static_cast<unsigned long long>(st.link_retransmits),
                  static_cast<unsigned long long>(st.timeouts),
                  static_cast<unsigned long long>(st.lost),
                  st.mean_latency(), static_cast<unsigned long long>(p99));
      done.clear();
    }
  }
  std::printf("\n");
}

void BM_CampaignRun(benchmark::State& state) {
  CampaignOptions o;
  o.config = SystemConfig::reduced(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)));
  o.seed = 3;
  o.run_cycles = 800;
  o.fault_horizon = 500;
  o.injection_rate = 0.01;
  const DegradationCampaign campaign(o);
  for (auto _ : state) {
    const DegradationReport r = campaign.run();
    benchmark::DoNotOptimize(r.final_usable);
  }
}
BENCHMARK(BM_CampaignRun)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ReclockWave(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TileGrid grid(n, n);
  FaultMap fm(grid);
  const std::vector<TileCoord> gens = {{0, 0}};
  const clock::ForwardingPlan plan = clock::simulate_forwarding(fm, gens);
  fm.set_faulty({n / 2, n / 2});
  for (auto _ : state) {
    const clock::ReclockReport r =
        clock::reselect_after_faults(plan, fm, gens);
    benchmark::DoNotOptimize(r.relatched.size());
  }
}
BENCHMARK(BM_ReclockWave)->Arg(16)->Arg(32);

/// Cycle cost of the armed timeout/retry machinery on a fault-free run:
/// the deadline heap should be invisible next to the mesh simulation.
void BM_NocStepTimeoutMachinery(benchmark::State& state) {
  noc::NocOptions opt;
  opt.response_timeout = state.range(0) ? 512 : 0;
  noc::NocSystem noc(FaultMap(TileGrid(16, 16)), opt);
  Rng rng(1);
  noc::TrafficConfig cfg;
  cfg.injection_rate = 0.02;
  const auto healthy = noc.faults().healthy_tiles();
  std::vector<noc::CompletedTransaction> done;
  for (auto _ : state) {
    for (const TileCoord src : healthy) {
      if (!rng.bernoulli(cfg.injection_rate)) continue;
      const TileCoord dst = pick_destination(noc.faults(), src, cfg, rng);
      if (!(dst == src))
        (void)noc.issue(src, dst, noc::PacketType::ReadRequest);
    }
    noc.step(done);
    done.clear();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) ? "timeout armed" : "timeout off");
}
BENCHMARK(BM_NocStepTimeoutMachinery)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wsp::bench::consume_quick_flag(&argc, argv);
  if (!quick) {
    print_campaign_sweep();
    print_clock_recovery_latency();
    print_ber_sweep();
  }
  const int rc = run_trial_scaling(quick);
  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return rc;
}
