// Experiment F6 — Figure 6: average percentage of disconnected
// source-destination pairs vs number of faulty chiplets, one DoR network
// versus two independent DoR networks, Monte Carlo over random fault maps
// on the full 32x32 wafer.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wsp/noc/connectivity.hpp"
#include "wsp/noc/odd_even.hpp"

namespace {

using namespace wsp;
using namespace wsp::noc;

void print_fig6() {
  std::printf("== Figure 6: disconnected pairs vs faulty chiplets ==\n");
  std::printf("paper: at 5 faults, >12%% disconnected with one DoR network, "
              "<2%% with two\n\n");
  const TileGrid grid(32, 32);
  Rng rng(42);
  const std::vector<std::size_t> counts{1, 2, 3, 4, 5, 6, 8, 10, 15, 20};
  const int trials = 30;
  const auto points = fig6_sweep(grid, counts, trials, rng);

  std::printf("%8s %16s %20s %16s %10s\n", "faults", "1 net one-way (%)",
              "1 net round-trip (%)", "2 networks (%)", "ratio");
  for (const Fig6Point& p : points) {
    std::printf("%8zu %16.3f %20.3f %16.3f %9.1fx\n", p.fault_count,
                p.mean_single_pct, p.mean_single_roundtrip_pct,
                p.mean_dual_pct,
                p.mean_dual_pct > 0
                    ? p.mean_single_roundtrip_pct / p.mean_dual_pct
                    : 0.0);
  }
  std::printf("\n(round-trip: on one network the response B->A takes a "
              "different L-path than the request A->B, so both must "
              "survive; with two networks the response retraces the "
              "request's tiles on the complement)\n");

  // Ablation (the paper's future work, Sec. VI footnote): minimal
  // adaptive odd-even routing as a third scheme.  Run on a 16x16 section:
  // the all-pairs odd-even census does a BFS per pair, so the full wafer
  // would take minutes for the same statistical story.
  std::printf("\n-- ablation: minimal-adaptive odd-even (future-work "
              "scheme, 16x16 section) --\n");
  std::printf("%8s %16s %18s %16s\n", "faults", "1 net DoR (%)",
              "1 net odd-even (%)", "2 nets DoR (%)");
  const TileGrid small(16, 16);
  for (const std::size_t n : {1u, 3u, 5u, 10u}) {
    double oe = 0.0, xy = 0.0, dual = 0.0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      const FaultMap faults = FaultMap::random_with_count(small, n, rng);
      oe += census_odd_even(faults).pct();
      const DisconnectionStats s = census_disconnection(faults);
      xy += s.single_pct();
      dual += s.dual_pct();
    }
    std::printf("%8zu %16.3f %18.3f %16.3f\n", n, xy / trials, oe / trials,
                dual / trials);
  }

  // Residual analysis at the paper's 5-fault operating point.
  std::size_t dual = 0, same_rc = 0, pairs = 0;
  for (int t = 0; t < trials; ++t) {
    const DisconnectionStats s =
        census_disconnection(FaultMap::random_with_count(grid, 5, rng));
    dual += s.disconnected_dual;
    same_rc += s.disconnected_dual_same_row_col;
    pairs += s.healthy_pairs;
  }
  std::printf("\nat 5 faults: %.1f%% of residual dual-network disconnects are "
              "same-row/column pairs\n(same-row/column pairs are only %.1f%% "
              "of all pairs)\n\n",
              dual ? 100.0 * same_rc / dual : 0.0, 100.0 * 62.0 / 1023.0);
}

void BM_Census32x32(benchmark::State& state) {
  Rng rng(9);
  const FaultMap faults = FaultMap::random_with_count(
      TileGrid(32, 32), static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(census_disconnection(faults).disconnected_dual);
}
BENCHMARK(BM_Census32x32)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
