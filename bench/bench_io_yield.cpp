// Experiment F5 — Sec. V / Fig. 5: dual-pillar I/O redundancy.  Reproduces
// the 81.46% -> 99.998% per-chiplet yield jump and the 380 -> ~1 expected
// faulty chiplets per wafer, cross-validated by Monte Carlo assembly.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wsp/io/bonding_yield.hpp"
#include "wsp/io/io_cell.hpp"
#include "wsp/io/pad_layout.hpp"

namespace {

using namespace wsp;
using namespace wsp::io;

void print_yield_tables() {
  const SystemConfig cfg = SystemConfig::paper_prototype();

  std::printf("== Sec. V / Fig. 5: dual-pillar I/O redundancy ==\n");
  std::printf("paper: single pillar 81.46%% chiplet yield -> two pillars "
              "99.998%%; expected faulty chiplets 380 -> ~1\n\n");

  std::printf("-- paper's simplified model (2048 chiplets x 2048 pads) --\n");
  std::printf("%10s %18s %24s\n", "pillars", "chiplet yield",
              "E[faulty chiplets]/wafer");
  for (int pillars = 1; pillars <= 3; ++pillars) {
    const double y = chiplet_bond_yield(cfg.pillar_bond_yield, pillars, 2048);
    std::printf("%10d %17.3f%% %24.3f\n", pillars, 100.0 * y,
                2048.0 * (1.0 - y));
  }

  std::printf("\n-- detailed model (2020-pad compute + 1250-pad memory) --\n");
  std::printf("%10s %14s %14s %12s %16s %12s\n", "pillars", "compute yld",
              "memory yld", "tile yld", "E[faulty chips]", "P[all good]");
  for (int pillars = 1; pillars <= 3; ++pillars) {
    const AssemblyYield y = analyze_assembly_yield(cfg, pillars);
    std::printf("%10d %13.3f%% %13.3f%% %11.3f%% %16.3f %12.3g\n", pillars,
                100.0 * y.compute.chiplet_yield, 100.0 * y.memory.chiplet_yield,
                100.0 * y.tile_yield, y.expected_faulty_chiplets,
                y.all_good_probability);
  }

  std::printf("\n-- Monte Carlo assembly (faulty chiplets per wafer) --\n");
  Rng rng(2021);
  const double mc1 = estimate_faulty_chiplets(cfg, 1, 30, rng);
  const double mc2 = estimate_faulty_chiplets(cfg, 2, 300, rng);
  std::printf("1 pillar/pad : %8.1f measured vs %8.1f analytic\n", mc1,
              analyze_assembly_yield(cfg, 1).expected_faulty_chiplets);
  std::printf("2 pillars/pad: %8.3f measured vs %8.3f analytic\n", mc2,
              analyze_assembly_yield(cfg, 2).expected_faulty_chiplets);

  // I/O cell headline figures (Sec. V).
  const IoCellSpec spec = IoCellSpec::from_config(cfg);
  std::printf("\n-- I/O cell --\n");
  std::printf("cell area %.0f um^2 | energy %.3f pJ/bit | %.0f MHz at "
              "%.0f um links | compute-chiplet I/O area %.2f mm^2\n",
              spec.cell_area_m2 / 1e-12, spec.energy_per_bit_j / 1e-12,
              spec.achievable_rate_hz(cfg.max_link_length_m) / 1e6,
              cfg.max_link_length_m / 1e-6,
              spec.total_area_m2(cfg.ios_per_compute_chiplet) / 1e-6);

  const PadLayout layout = generate_pad_layout(
      cfg.geometry.compute_chiplet_width_m,
      cfg.geometry.compute_chiplet_height_m, cfg.io_pitch_m,
      compute_chiplet_demand(cfg), cfg.io_cell_area_m2);
  std::printf("pad layout: %zu pads, %d columns, essential %d / secondary %d, "
              "feasible %s\n",
              layout.pads.size(), layout.columns_used, layout.essential_count,
              layout.secondary_count, layout.feasible ? "yes" : "NO");
  std::printf("edge escape density: %.0f wires/mm (2 layers at 5 um pitch)\n\n",
              edge_escape_density_per_m(cfg.signal_routing_layers,
                                        cfg.wiring_pitch_m) / 1000.0);
}

void BM_MonteCarloAssembly(benchmark::State& state) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  Rng rng(1);
  const int pillars = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        simulate_assembly(cfg, pillars, rng).faulty_compute_chiplets);
}
BENCHMARK(BM_MonteCarloAssembly)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_yield_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
