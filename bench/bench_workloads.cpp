// Workload benches: the tenant-class traffic generators (collectives,
// layer pipelines, spiking bursts, graph waves) driving the full 32x32
// dual-mesh NoC through the wsp::workloads seam — wall time, per-class
// delivery latency percentiles, and the thread x shard bit-identity gate —
// plus the Sec. II graph kernels (BFS, SSSP, PageRank) the paper ran on
// its reduced-size emulated system.
//
// Exit code is non-zero when any generator class's delivery-trace digest
// diverges across thread or shard counts: the injection streams are
// defined to be deterministic, so a divergence is a correctness bug, not
// noise.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/workloads/graph_apps.hpp"
#include "wsp/workloads/pagerank.hpp"
#include "wsp/workloads/traffic_gen.hpp"

namespace {

using namespace wsp;
using namespace wsp::workloads;

/// The per-class reference specs the 32x32 generator rows run: each class
/// sized so a ~1k-cycle window covers several full phases (ring ops, halo
/// periods, pipeline layers, burst lifetimes, BFS levels).
WorkloadSpec bench_spec(WorkloadClass cls) {
  WorkloadSpec s;
  s.cls = cls;
  s.seed = 2021;
  s.allreduce.chunk_packets = 4;
  s.allreduce.step_cycles = 8;
  s.allreduce.gap_cycles = 16;
  s.halo.halo_period = 8;
  s.pipeline.stages = 4;
  s.pipeline.comm_cycles = 8;
  s.pipeline.stage_flops = 2.0e5;
  s.spiking.background_rate = 0.002;
  s.spiking.burst_interval = 256;
  s.spiking.hotspot = {16, 16};
  s.spiking.burst_radius = 3;
  s.spiking.burst_cycles = 48;
  s.spiking.burst_intensity = 0.6;
  s.graph.scale = 9;
  s.graph.edges = 4096;
  s.graph.graph_seed = 7;
  s.graph.compute_gap_cycles = 4;
  return s;
}

/// One generator class through the seam on a fault-free 32x32 wafer:
/// wall time per thread count plus the digest bit-identity gate across
/// thread x shard combinations.
int run_generator_classes(bool quick, wsp::bench::JsonReporter& json) {
  const int repeats = quick ? 2 : 3;
  const std::uint64_t cycles = quick ? 256 : 1024;
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 8};
  const SystemConfig config = SystemConfig::reduced(32, 32);
  const FaultMap faults(config.grid());

  std::printf("== tenant-class traffic generators (32x32, %llu cycles) ==\n",
              static_cast<unsigned long long>(cycles));
  std::printf("%-15s %8s %12s %10s %8s %8s %8s %10s\n", "class", "threads",
              "wall ms", "injected", "p50", "p95", "p99", "identical");

  int rc = 0;
  for (const WorkloadClass cls :
       {WorkloadClass::AllReduceRing, WorkloadClass::HaloExchange,
        WorkloadClass::LayerPipeline, WorkloadClass::SpikingBurst,
        WorkloadClass::GraphWave}) {
    const WorkloadSpec spec = bench_spec(cls);
    std::uint32_t base_digest = 0;
    double serial_ms = 0.0;
    for (const int threads : thread_counts) {
      exec::set_shared_threads(threads);
      WorkloadRunResult result;
      const double ms = wsp::bench::min_wall_ms(
          [&] {
            noc::NocSystem noc(faults);
            auto gen = make_generator(spec, config, faults);
            result = run_workload_traffic(noc, *gen, cycles);
          },
          repeats, 1);
      if (threads == 1) {
        serial_ms = ms;
        base_digest = result.delivery_digest;
      }
      // Shard sweep at this thread count: the mesh partition must not
      // leak into the delivery trace.
      bool identical = result.delivery_digest == base_digest;
      for (const int shards : {2, 8}) {
        noc::NocOptions nopt;
        nopt.mesh.shards = shards;
        noc::NocSystem noc(faults, nopt);
        auto gen = make_generator(spec, config, faults);
        identical &= run_workload_traffic(noc, *gen, cycles)
                         .delivery_digest == base_digest;
      }
      if (!identical) rc = 1;
      std::printf("%-15s %8d %12.2f %10llu %8llu %8llu %8llu %10s\n",
                  to_string(cls), threads, ms,
                  static_cast<unsigned long long>(result.injections),
                  static_cast<unsigned long long>(result.report.p50_latency),
                  static_cast<unsigned long long>(result.report.p95_latency),
                  static_cast<unsigned long long>(result.report.p99_latency),
                  identical ? "yes" : "NO — DIVERGED");

      wsp::bench::Measurement m;
      m.name = std::string("workload_") + to_string(cls) + "_32x32";
      m.wall_ms = ms;
      m.iterations = static_cast<int>(cycles);
      m.threads = threads;
      m.speedup_vs_serial = serial_ms > 0 ? serial_ms / ms : 0.0;
      json.add(m);
    }
  }
  exec::set_shared_threads(0);
  if (rc != 0)
    std::fprintf(stderr,
                 "FAIL: a generator class's delivery trace diverged across "
                 "thread/shard counts\n");
  std::printf("\n");
  return rc;
}

/// The Sec. II closed-loop kernels, kept as perf rows: BFS through the
/// cycle-level core + NoC model.
void run_graph_kernels(bool quick, wsp::bench::JsonReporter& json) {
  Rng rng(3);
  const Graph g = make_rmat_graph(10, 6000, 1, rng);
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  const FaultMap faults(cfg.grid());
  const int repeats = quick ? 2 : 5;
  const double bfs_ms = wsp::bench::min_wall_ms(
      [&] {
        benchmark::DoNotOptimize(run_bfs(cfg, faults, g, 0).stats.makespan);
      },
      repeats, 1);
  std::printf("== Sec. II graph kernels (8x8, R-MAT scale-10) ==\n");
  std::printf("%-24s %12.2f ms\n\n", "BFS makespan sim", bfs_ms);
  wsp::bench::Measurement m;
  m.name = "workloads_bfs_8x8";
  m.wall_ms = bfs_ms;
  json.add(m);
}

void print_scaling() {
  std::printf("== Sec. II validation: BFS / SSSP on the multi-tile system ==\n");
  std::printf("paper: \"successfully able to run various workloads including "
              "BFS, SSSP\" on a reduced-size emulated system\n\n");

  Rng rng(2021);
  const Graph g = make_rmat_graph(10, 6000, 4, rng);  // 1024 vertices
  std::printf("workload: R-MAT scale-11, %llu directed edges\n\n",
              static_cast<unsigned long long>(g.edge_count()));

  std::printf("-- strong scaling (healthy wafer sections) --\n");
  std::printf("%10s %8s %14s %14s %14s %10s\n", "tiles", "kernel", "makespan",
              "messages", "core util", "verified");
  for (const int dim : {2, 4, 8}) {
    const SystemConfig cfg = SystemConfig::reduced(dim, dim);
    const FaultMap faults(cfg.grid());
    for (const bool weighted : {false, true}) {
      const GraphAppResult r = run_graph_app(cfg, faults, g, 0, weighted);
      const bool ok =
          r.distance ==
          (weighted ? reference_sssp(g, 0) : reference_bfs(g, 0));
      std::printf("%7dx%-2d %8s %14llu %14llu %13.1f%% %10s\n", dim, dim,
                  weighted ? "SSSP" : "BFS",
                  static_cast<unsigned long long>(r.stats.makespan),
                  static_cast<unsigned long long>(r.stats.messages_sent),
                  100.0 * r.stats.mean_core_utilization,
                  ok ? "yes" : "NO");
    }
  }

  std::printf("\n-- PageRank (10 iterations, bulk-synchronous) --\n");
  std::printf("%10s %14s %14s %10s\n", "tiles", "makespan", "messages",
              "verified");
  for (const int dim : {2, 4, 8}) {
    const SystemConfig cfg = SystemConfig::reduced(dim, dim);
    const FaultMap faults(cfg.grid());
    const PageRankResult pr = run_pagerank(cfg, faults, g, {});
    const bool ok = pr.rank == reference_pagerank(g, {});
    std::printf("%7dx%-2d %14llu %14llu %10s\n", dim, dim,
                static_cast<unsigned long long>(pr.stats.makespan),
                static_cast<unsigned long long>(pr.stats.messages_sent),
                ok ? "yes" : "NO");
  }

  std::printf("\n-- BFS under injected tile faults (8x8 section) --\n");
  std::printf("%8s %14s %14s %12s %10s\n", "faults", "makespan", "messages",
              "relayed", "verified");
  Rng frng(5);
  for (const std::size_t n : {0u, 1u, 3u}) {
    // Faults placed away from partition-threatening corners.
    const SystemConfig cfg = SystemConfig::reduced(8, 8);
    FaultMap faults(cfg.grid());
    std::size_t placed = 0;
    while (placed < n) {
      const TileCoord c{1 + static_cast<int>(frng.below(6)),
                        1 + static_cast<int>(frng.below(6))};
      if (faults.is_healthy(c)) {
        faults.set_faulty(c);
        ++placed;
      }
    }
    noc::NocOptions nopt;
    const GraphAppResult r = run_graph_app(cfg, faults, g, 0, false, {}, nopt);
    const bool ok = r.distance == reference_bfs(g, 0);
    std::printf("%8zu %14llu %14llu %12s %10s\n", n,
                static_cast<unsigned long long>(r.stats.makespan),
                static_cast<unsigned long long>(r.stats.messages_sent),
                "(kernel)", ok ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_Bfs8x8(benchmark::State& state) {
  Rng rng(3);
  const Graph g = make_rmat_graph(10, 6000, 1, rng);
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  const FaultMap faults(cfg.grid());
  for (auto _ : state)
    benchmark::DoNotOptimize(run_bfs(cfg, faults, g, 0).stats.makespan);
}
BENCHMARK(BM_Bfs8x8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wsp::bench::consume_quick_flag(&argc, argv);
  wsp::bench::JsonReporter json("workloads");
  if (!quick) print_scaling();
  const int rc = run_generator_classes(quick, json);
  run_graph_kernels(quick, json);
  json.write();
  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return rc;
}
