// Experiment S2 — Sec. II validation: graph workloads (BFS, SSSP) on the
// simulated multi-tile system (the paper used a reduced-size FPGA
// emulation; we scale further in software) with strong-scaling and
// fault-resilience sweeps.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wsp/workloads/graph_apps.hpp"
#include "wsp/workloads/pagerank.hpp"

namespace {

using namespace wsp;
using namespace wsp::workloads;

void print_scaling() {
  std::printf("== Sec. II validation: BFS / SSSP on the multi-tile system ==\n");
  std::printf("paper: \"successfully able to run various workloads including "
              "BFS, SSSP\" on a reduced-size emulated system\n\n");

  Rng rng(2021);
  const Graph g = make_rmat_graph(10, 6000, 4, rng);  // 1024 vertices
  std::printf("workload: R-MAT scale-11, %llu directed edges\n\n",
              static_cast<unsigned long long>(g.edge_count()));

  std::printf("-- strong scaling (healthy wafer sections) --\n");
  std::printf("%10s %8s %14s %14s %14s %10s\n", "tiles", "kernel", "makespan",
              "messages", "core util", "verified");
  for (const int dim : {2, 4, 8}) {
    const SystemConfig cfg = SystemConfig::reduced(dim, dim);
    const FaultMap faults(cfg.grid());
    for (const bool weighted : {false, true}) {
      const GraphAppResult r = run_graph_app(cfg, faults, g, 0, weighted);
      const bool ok =
          r.distance ==
          (weighted ? reference_sssp(g, 0) : reference_bfs(g, 0));
      std::printf("%7dx%-2d %8s %14llu %14llu %13.1f%% %10s\n", dim, dim,
                  weighted ? "SSSP" : "BFS",
                  static_cast<unsigned long long>(r.stats.makespan),
                  static_cast<unsigned long long>(r.stats.messages_sent),
                  100.0 * r.stats.mean_core_utilization,
                  ok ? "yes" : "NO");
    }
  }

  std::printf("\n-- PageRank (10 iterations, bulk-synchronous) --\n");
  std::printf("%10s %14s %14s %10s\n", "tiles", "makespan", "messages",
              "verified");
  for (const int dim : {2, 4, 8}) {
    const SystemConfig cfg = SystemConfig::reduced(dim, dim);
    const FaultMap faults(cfg.grid());
    const PageRankResult pr = run_pagerank(cfg, faults, g, {});
    const bool ok = pr.rank == reference_pagerank(g, {});
    std::printf("%7dx%-2d %14llu %14llu %10s\n", dim, dim,
                static_cast<unsigned long long>(pr.stats.makespan),
                static_cast<unsigned long long>(pr.stats.messages_sent),
                ok ? "yes" : "NO");
  }

  std::printf("\n-- BFS under injected tile faults (8x8 section) --\n");
  std::printf("%8s %14s %14s %12s %10s\n", "faults", "makespan", "messages",
              "relayed", "verified");
  Rng frng(5);
  for (const std::size_t n : {0u, 1u, 3u}) {
    // Faults placed away from partition-threatening corners.
    const SystemConfig cfg = SystemConfig::reduced(8, 8);
    FaultMap faults(cfg.grid());
    std::size_t placed = 0;
    while (placed < n) {
      const TileCoord c{1 + static_cast<int>(frng.below(6)),
                        1 + static_cast<int>(frng.below(6))};
      if (faults.is_healthy(c)) {
        faults.set_faulty(c);
        ++placed;
      }
    }
    noc::NocOptions nopt;
    const GraphAppResult r = run_graph_app(cfg, faults, g, 0, false, {}, nopt);
    const bool ok = r.distance == reference_bfs(g, 0);
    std::printf("%8zu %14llu %14llu %12s %10s\n", n,
                static_cast<unsigned long long>(r.stats.makespan),
                static_cast<unsigned long long>(r.stats.messages_sent),
                "(kernel)", ok ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_Bfs8x8(benchmark::State& state) {
  Rng rng(3);
  const Graph g = make_rmat_graph(10, 6000, 1, rng);
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  const FaultMap faults(cfg.grid());
  for (auto _ : state)
    benchmark::DoNotOptimize(run_bfs(cfg, faults, g, 0).stats.makespan);
}
BENCHMARK(BM_Bfs8x8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
