// PDN<->NoC co-simulation benches: wall time and thread-count bit-identity
// of the coupled epoch loop on a 32x32 wafer section, and the price of the
// per-epoch PDN re-solve — warm-started batched multigrid vs cold starts —
// that makes coupling affordable next to a static campaign.
//
// Exit code is non-zero when a threaded coupled run diverges from the
// serial baseline, or when the warm-started epoch re-solves cost more than
// 2x their cold-start equivalents (the warm start is the whole point).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "wsp/cosim/cosim.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace {

using namespace wsp;

/// The coupled reference configuration: center hotspot, link integrity on,
/// and the amplified voltage->BER mapping the cosim tests and example use
/// so the coupling is visibly exercised (retransmits feed back as
/// activity) rather than idling at the BER floor.
cosim::CosimOptions coupled_options(int n) {
  cosim::CosimOptions o;
  o.config = SystemConfig::reduced(n, n);
  o.seed = 13;
  o.epoch_cycles = 64;
  o.noc.mesh.integrity.enabled = true;
  o.traffic.pattern = noc::TrafficPattern::Hotspot;
  o.traffic.injection_rate = 0.05;
  o.traffic.hotspot = {n / 2, n / 2};
  o.pdn.ldo.line_regulation = 0.1;
  o.ber.floor_ber = 1e-6;
  o.ber.volts_per_decade = 0.003;
  return o;
}

/// Coupled 32x32 loop at 1/2/8 threads: wall time plus the bit-identity
/// gate (state fingerprint and report bytes must match the serial run).
int run_coupled_scaling(bool quick, wsp::bench::JsonReporter& json) {
  const int repeats = quick ? 2 : 3;
  const std::uint64_t epochs = quick ? 4 : 8;
  const cosim::CosimOptions o = coupled_options(32);

  std::printf("== coupled PDN<->NoC loop scaling (32x32, hotspot, %llu "
              "epochs x %llu cycles) ==\n",
              static_cast<unsigned long long>(epochs),
              static_cast<unsigned long long>(o.epoch_cycles));
  std::printf("%8s %12s %10s %12s\n", "threads", "wall ms", "speedup",
              "identical");

  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 8};
  std::uint32_t base_fp = 0;
  std::vector<std::uint8_t> base_report;
  double serial_ms = 0.0;
  int rc = 0;
  for (const int threads : thread_counts) {
    exec::set_shared_threads(threads);
    std::uint32_t fp = 0;
    std::vector<std::uint8_t> report;
    const double ms = wsp::bench::min_wall_ms(
        [&] {
          cosim::CosimLoop loop(o);
          loop.run_epochs(epochs);
          fp = loop.state_fingerprint();
          report = cosim::serialize_report(loop.report());
        },
        repeats, 1);
    if (threads == 1) {
      serial_ms = ms;
      base_fp = fp;
      base_report = report;
    }
    const bool identical = fp == base_fp && report == base_report;
    if (!identical) rc = 1;
    std::printf("%8d %12.2f %9.2fx %12s\n", threads, ms,
                serial_ms > 0 ? serial_ms / ms : 0.0,
                identical ? "yes" : "NO — DIVERGED");

    wsp::bench::Measurement m;
    m.name = "cosim_loop_32x32";
    m.wall_ms = ms;
    m.iterations = static_cast<int>(epochs);
    m.threads = threads;
    m.speedup_vs_serial = serial_ms > 0 ? serial_ms / ms : 0.0;
    json.add(m);
  }
  exec::set_shared_threads(0);
  if (rc != 0)
    std::fprintf(stderr,
                 "FAIL: threaded coupled run diverged from the serial "
                 "baseline\n");
  std::printf("\n");
  return rc;
}

/// The per-epoch re-solve price: the same drifting power-map sequence an
/// epoch driver produces, solved warm (seeds persist across epochs, as
/// CosimLoop does) vs cold (fresh multigrid descent every epoch).  A
/// single cold solve — the static campaign's total PDN work — is printed
/// alongside for the coupled-vs-static cost comparison.
int run_warm_vs_cold(bool quick, wsp::bench::JsonReporter& json) {
  const int repeats = quick ? 2 : 3;
  const int epochs = quick ? 4 : 8;
  const cosim::CosimOptions o = coupled_options(32);
  const std::size_t tiles = o.config.grid().tile_count();

  // A drifting load: the hotspot ramps while the background breathes —
  // successive maps are close, which is exactly what warm starts exploit.
  std::vector<std::vector<double>> maps;
  for (int e = 0; e < epochs; ++e) {
    std::vector<double> power(tiles);
    for (std::size_t i = 0; i < tiles; ++i)
      power[i] = o.config.tile_peak_power_w *
                 (0.3 + 0.05 * static_cast<double>(e % 4) +
                  0.02 * static_cast<double>(i % 5));
    maps.push_back(std::move(power));
  }

  pdn::WaferPdn pdn(o.config, o.pdn);
  std::vector<std::vector<double>> seeds(1);
  std::vector<std::vector<double>> batch(1);

  const double warm_ms = wsp::bench::min_wall_ms(
      [&] {
        seeds[0].clear();
        for (int e = 0; e < epochs; ++e) {
          batch[0] = maps[static_cast<std::size_t>(e)];
          benchmark::DoNotOptimize(
              pdn.solve_batch_warm(batch, seeds)[0].min_supply_v);
        }
      },
      repeats, 1);
  const double cold_ms = wsp::bench::min_wall_ms(
      [&] {
        for (int e = 0; e < epochs; ++e) {
          seeds[0].clear();
          batch[0] = maps[static_cast<std::size_t>(e)];
          benchmark::DoNotOptimize(
              pdn.solve_batch_warm(batch, seeds)[0].min_supply_v);
        }
        seeds[0].clear();
      },
      repeats, 1);
  const double single_ms = wsp::bench::min_wall_ms(
      [&] { benchmark::DoNotOptimize(pdn.solve(maps[0]).min_supply_v); },
      repeats, 1);

  std::printf("== per-epoch PDN re-solve cost (32x32, %d epochs) ==\n",
              epochs);
  std::printf("%-28s %12.2f ms\n", "warm-started epoch solves", warm_ms);
  std::printf("%-28s %12.2f ms\n", "cold-start epoch solves", cold_ms);
  std::printf("%-28s %12.2f ms  (static campaign's total PDN work)\n",
              "single cold solve", single_ms);
  std::printf("%-28s %12.2fx\n\n", "warm/cold ratio",
              cold_ms > 0 ? warm_ms / cold_ms : 0.0);

  wsp::bench::Measurement warm;
  warm.name = "cosim_pdn_warm_epochs_32x32";
  warm.wall_ms = warm_ms;
  warm.iterations = epochs;
  json.add(warm);
  wsp::bench::Measurement cold;
  cold.name = "cosim_pdn_cold_epochs_32x32";
  cold.wall_ms = cold_ms;
  cold.iterations = epochs;
  json.add(cold);
  wsp::bench::Measurement single;
  single.name = "cosim_pdn_single_solve_32x32";
  single.wall_ms = single_ms;
  json.add(single);

  if (warm_ms > 2.0 * cold_ms) {
    std::fprintf(stderr,
                 "FAIL: warm-started epoch solves (%.2f ms) cost more than "
                 "2x cold starts (%.2f ms)\n",
                 warm_ms, cold_ms);
    return 1;
  }
  return 0;
}

/// Narrated coupled-vs-static epoch table for the full (non-quick) run.
void print_coupled_trace() {
  const cosim::CosimOptions o = coupled_options(32);
  cosim::CosimLoop loop(o);
  std::printf("== coupled epoch trace (32x32, hotspot at (16,16)) ==\n");
  std::printf("%-6s %-10s %-12s %-14s %-12s %s\n", "epoch", "travs",
              "min_V", "excess_droop", "mean_BER", "warm_iters");
  loop.run_epochs(8);
  for (const cosim::EpochReport& r : loop.epochs())
    std::printf("%-6llu %-10llu %-12.4f %-14.6f %-12.3e %d\n",
                static_cast<unsigned long long>(r.epoch),
                static_cast<unsigned long long>(r.traversals),
                r.min_supply_v, r.max_excess_droop_v, r.mean_ber,
                r.coupled_iterations);
  std::printf("\n");
}

void BM_CosimEpoch(benchmark::State& state) {
  const cosim::CosimOptions o =
      coupled_options(static_cast<int>(state.range(0)));
  cosim::CosimLoop loop(o);
  for (auto _ : state) {
    loop.run_epochs(1);
    benchmark::DoNotOptimize(loop.epochs_completed());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * o.epoch_cycles));
}
BENCHMARK(BM_CosimEpoch)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wsp::bench::consume_quick_flag(&argc, argv);
  wsp::bench::JsonReporter json("cosim");
  if (!quick) print_coupled_trace();
  int rc = run_coupled_scaling(quick, json);
  rc |= run_warm_vs_cold(quick, json);
  json.write();
  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return rc;
}
