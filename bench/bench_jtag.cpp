// Experiments F9/F10 — Sec. VII: test infrastructure.  Memory-load time
// (single chain 2.5 h -> 32 chains under 5 min), the 14x broadcast
// optimisation, and the TCK cost of progressive chain unrolling.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wsp/testinfra/dap_chain.hpp"
#include "wsp/testinfra/prebond.hpp"
#include "wsp/testinfra/test_time.hpp"

namespace {

using namespace wsp;
using namespace wsp::testinfra;

void print_load_times() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  std::printf("== Sec. VII: JTAG memory-load time ==\n");
  std::printf("paper: 2.5 hours with one chain -> roughly under 5 minutes "
              "with 32 row chains (32x); broadcast cuts per-tile program "
              "shifting 14x\n\n");
  std::printf("total payload: %.2f Gbit of SRAM across the wafer\n\n",
              static_cast<double>(total_memory_payload_bits(cfg)) / 1e9);
  std::printf("%8s %10s %16s %14s\n", "chains", "broadcast", "load time",
              "speedup vs 1");
  const LoadTimeReport base = memory_load_time(cfg, 1, false);
  for (const int chains : {1, 2, 8, 16, 32}) {
    for (const bool bcast : {false, true}) {
      const LoadTimeReport r = memory_load_time(cfg, chains, bcast);
      char buf[32];
      if (r.seconds > 3600)
        std::snprintf(buf, sizeof buf, "%.2f h", r.hours());
      else
        std::snprintf(buf, sizeof buf, "%.1f min", r.minutes());
      std::printf("%8d %10s %16s %13.1fx\n", chains, bcast ? "yes" : "no",
                  buf, base.seconds / r.seconds);
    }
  }
  std::printf("\n");
}

void print_unrolling_costs() {
  std::printf("-- progressive unrolling: TCKs to isolate the faulty tile --\n");
  std::printf("(32-tile row chain, 14 DAPs per tile)\n");
  std::printf("%18s %14s %18s\n", "faulty position", "TCKs", "TCKs (broadcast)");
  for (const int pos : {0, 7, 15, 23, 31}) {
    std::vector<bool> faults(32, false);
    faults[static_cast<std::size_t>(pos)] = true;

    WaferTestChain serial(32, 14, faults);
    std::uint64_t tcks_serial = 0;
    const auto f1 = serial.locate_first_faulty(&tcks_serial);

    WaferTestChain bcast(32, 14, faults);
    bcast.set_broadcast(true);
    std::uint64_t tcks_bcast = 0;
    const auto f2 = bcast.locate_first_faulty(&tcks_bcast);

    std::printf("%18d %14llu %18llu   (found: %d/%d)\n", pos,
                static_cast<unsigned long long>(tcks_serial),
                static_cast<unsigned long long>(tcks_bcast),
                f1.value_or(-1), f2.value_or(-1));
  }
  std::printf("\n");
}

void print_kgd() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  std::printf("-- pre-bond (KGD) screening value --\n");
  std::printf("%14s %22s %24s\n", "die yield", "E[faulty] with KGD",
              "E[faulty] without KGD");
  for (const double die_yield : {0.98, 0.95, 0.90, 0.80}) {
    const KgdBenefit b = kgd_benefit(cfg, 1.0 - die_yield, 0.99998);
    std::printf("%13.0f%% %22.2f %24.1f\n", 100.0 * die_yield,
                b.expected_faulty_with_kgd, b.expected_faulty_without_kgd);
  }
  std::printf("(probe pads: fine 10 um pads are un-probeable; JTAG signals "
              "are duplicated on >=50 um pads that are never bonded)\n\n");
}

void BM_UnrollFullRow(benchmark::State& state) {
  std::vector<bool> faults(32, false);
  faults[31] = true;
  for (auto _ : state) {
    WaferTestChain chain(32, 14, faults);
    benchmark::DoNotOptimize(chain.locate_first_faulty());
  }
}
BENCHMARK(BM_UnrollFullRow)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_load_times();
  print_unrolling_costs();
  print_kgd();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
