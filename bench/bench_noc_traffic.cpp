// Experiments F7/S6 — Sec. VI: cycle-level NoC behaviour.  Latency vs
// offered load for the dual-network fabric, traffic-pattern comparison,
// the request/response complementary-network protocol, and the cost of
// kernel-level intermediate-tile relaying under faults.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/mesh_network.hpp"
#include "wsp/noc/odd_even.hpp"
#include "wsp/noc/traffic.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/obs/trace.hpp"

namespace {

using namespace wsp;
using namespace wsp::noc;

/// Drives one raw mesh network (no request/response layer) with random
/// single-packet traffic and returns (delivered, mean latency).
std::pair<std::uint64_t, double> drive_mesh(MeshNetwork& net, double rate,
                                            std::uint64_t cycles,
                                            TrafficPattern pattern,
                                            Rng& rng) {
  const FaultMap empty_faults(net.grid());
  TrafficConfig tc;
  tc.pattern = pattern;
  tc.hotspot = {net.grid().width() / 2, net.grid().height() / 2};
  std::vector<Packet> out;
  std::uint64_t id = 1, latency_sum = 0, delivered = 0;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    net.grid().for_each([&](TileCoord src) {
      if (!rng.bernoulli(rate)) return;
      const TileCoord dst = pick_destination(empty_faults, src, tc, rng);
      if (dst == src) return;
      Packet p;
      p.src = src;
      p.dst = dst;
      p.id = id++;
      p.injected_cycle = net.now();
      net.inject(p);
    });
    out.clear();
    net.step(out);
    for (const Packet& p : out) {
      latency_sum += p.delivered_cycle - p.injected_cycle;
      ++delivered;
    }
  }
  while (net.in_flight() > 0) {
    out.clear();
    net.step(out);
    for (const Packet& p : out) {
      latency_sum += p.delivered_cycle - p.injected_cycle;
      ++delivered;
    }
  }
  return {delivered, delivered ? static_cast<double>(latency_sum) / delivered
                               : 0.0};
}

void print_adaptive_ablation() {
  std::printf("-- ablation: DoR vs minimal-adaptive odd-even (one 16x16 "
              "network, raw packets) --\n");
  std::printf("%-16s %10s %14s %14s %16s\n", "pattern", "rate",
              "DoR latency", "odd-even lat.", "odd-even gain");
  for (const auto pattern :
       {TrafficPattern::UniformRandom, TrafficPattern::Hotspot,
        TrafficPattern::Transpose}) {
    for (const double rate : {0.05, 0.15}) {
      Rng ra(9), rb(9);
      MeshNetwork dor(FaultMap(TileGrid(16, 16)), NetworkKind::XY);
      MeshOptions aopt;
      aopt.adaptive_odd_even = true;
      MeshNetwork oe(FaultMap(TileGrid(16, 16)), NetworkKind::XY, aopt);
      const auto [d1, l1] = drive_mesh(dor, rate, 600, pattern, ra);
      const auto [d2, l2] = drive_mesh(oe, rate, 600, pattern, rb);
      std::printf("%-16s %10.2f %14.1f %14.1f %15.1f%%\n",
                  to_string(pattern), rate, l1, l2,
                  l1 > 0 ? 100.0 * (l1 - l2) / l1 : 0.0);
    }
  }
  std::printf("\n");
}

void print_load_sweep() {
  std::printf("== Sec. VI: NoC latency/throughput (16x16 wafer section) ==\n");
  std::printf("%12s %12s %14s %12s %8s %8s %8s %8s\n", "inj rate", "offered",
              "throughput", "mean lat", "p50", "p95", "p99", "max");
  for (const double rate : {0.005, 0.01, 0.02, 0.04, 0.08, 0.16}) {
    NocSystem noc{FaultMap(TileGrid(16, 16))};
    Rng rng(5);
    TrafficConfig cfg;
    cfg.injection_rate = rate;
    const TrafficReport r = run_traffic(noc, cfg, 800, rng);
    std::printf("%12.3f %12.3f %14.3f %12.1f %8llu %8llu %8llu %8llu\n",
                rate, r.offered_load, r.throughput, r.mean_latency,
                static_cast<unsigned long long>(r.p50_latency),
                static_cast<unsigned long long>(r.p95_latency),
                static_cast<unsigned long long>(r.p99_latency),
                static_cast<unsigned long long>(r.max_latency));
  }
  std::printf("\n");
}

void print_pattern_comparison() {
  std::printf("-- traffic patterns at 2%% injection (16x16) --\n");
  std::printf("%-16s %14s %14s\n", "pattern", "throughput", "mean latency");
  for (const auto pattern :
       {TrafficPattern::UniformRandom, TrafficPattern::Transpose,
        TrafficPattern::BitComplement, TrafficPattern::Hotspot,
        TrafficPattern::NearNeighbor}) {
    NocSystem noc{FaultMap(TileGrid(16, 16))};
    Rng rng(11);
    TrafficConfig cfg;
    cfg.pattern = pattern;
    cfg.injection_rate = 0.02;
    cfg.hotspot = {8, 8};
    const TrafficReport r = run_traffic(noc, cfg, 800, rng);
    std::printf("%-16s %14.3f %14.1f\n", to_string(pattern), r.throughput,
                r.mean_latency);
  }
  std::printf("\n");
}

void print_fault_relaying() {
  std::printf("-- Fig. 7 protocol + relaying cost under faults (32x32) --\n");
  std::printf("%8s %10s %10s %12s %14s %12s\n", "faults", "issued",
              "completed", "relayed", "mean latency", "unreachable");
  Rng seed_rng(77);
  for (const std::size_t n : {0u, 2u, 5u, 10u, 20u}) {
    const FaultMap faults =
        FaultMap::random_with_count(TileGrid(32, 32), n, seed_rng);
    NocSystem noc{faults};
    Rng rng(3);
    TrafficConfig cfg;
    cfg.injection_rate = 0.002;
    const TrafficReport r = run_traffic(noc, cfg, 500, rng);
    std::printf("%8zu %10llu %10llu %12llu %14.1f %12llu\n", n,
                static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(noc.stats().relayed),
                r.mean_latency,
                static_cast<unsigned long long>(r.unreachable));
  }
  std::printf("\nprotocol check: every transaction put its request on one "
              "network and its response on the complement (in-order per "
              "pair, deadlock-free by construction)\n\n");
}

/// Cross-PR wall-clock tracking for the cycle-level NoC simulation: one
/// fixed seeded workload per array size, min-of-N (the NoC stepper itself
/// is serial; threads records the exec pool configuration for context).
void run_json_measurements(bool quick) {
  wsp::bench::JsonReporter json("noc_traffic");
  const int repeats = quick ? 2 : 5;
  const std::uint64_t cycles = quick ? 200 : 800;
  for (const int n : {8, 16, 32}) {
    if (quick && n == 32) continue;
    wsp::bench::Measurement m;
    m.name = "noc_uniform_traffic_" + std::to_string(n) + "x" +
             std::to_string(n);
    m.iterations = static_cast<int>(cycles);
    m.threads = exec::shared_threads();
    m.wall_ms = wsp::bench::min_wall_ms(
        [&] {
          NocSystem noc{FaultMap(TileGrid(n, n))};
          Rng rng(5);
          TrafficConfig cfg;
          cfg.injection_rate = 0.02;
          const TrafficReport r = run_traffic(noc, cfg, cycles, rng);
          benchmark::DoNotOptimize(r.completed);
        },
        repeats, 1);
    json.add(m);
  }
  json.write();

  // Unified run report: the bench rows above plus one registry-instrumented
  // 16x16 reference run (fixed seed, so every field is deterministic).
  obs::MetricsRegistry registry;
  NocSystem noc{FaultMap(TileGrid(16, 16)), NocOptions{}, &registry};
  Rng rng(5);
  TrafficConfig cfg;
  cfg.injection_rate = 0.02;
  const TrafficReport r = run_traffic(noc, cfg, cycles, rng);

  obs::RunReport report("noc_traffic");
  for (const wsp::bench::Measurement& m : json.results())
    report.add_bench({m.name, m.wall_ms,
                      static_cast<std::uint64_t>(m.iterations), m.threads,
                      m.speedup_vs_serial});
  report.add_scalar("traffic", "offered_load", r.offered_load);
  report.add_scalar("traffic", "throughput", r.throughput);
  report.add_scalar("traffic", "mean_latency", r.mean_latency);
  report.add_scalar("traffic", "p50_latency",
                    static_cast<double>(r.p50_latency));
  report.add_scalar("traffic", "p95_latency",
                    static_cast<double>(r.p95_latency));
  report.add_scalar("traffic", "p99_latency",
                    static_cast<double>(r.p99_latency));
  report.add_metrics("noc", registry);
  report.write_default();
}

void BM_NocCyclesPerSecond(benchmark::State& state) {
  NocSystem noc{FaultMap(TileGrid(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(0))))};
  Rng rng(1);
  TrafficConfig cfg;
  cfg.injection_rate = 0.02;
  const FaultMap& faults = noc.selector().connectivity().faults();
  const auto healthy = faults.healthy_tiles();
  std::vector<CompletedTransaction> done;
  for (auto _ : state) {
    for (const TileCoord src : healthy) {
      if (!rng.bernoulli(cfg.injection_rate)) continue;
      const TileCoord dst = pick_destination(faults, src, cfg, rng);
      if (!(dst == src)) (void)noc.issue(src, dst, PacketType::ReadRequest);
    }
    noc.step(done);
    done.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocCyclesPerSecond)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wsp::bench::consume_quick_flag(&argc, argv);
  // WSP_TRACE=1 records every simulator span (noc.step, noc.traffic.run,
  // exec.chunk, ...) and writes TRACE_noc_traffic.json on exit.
  wsp::obs::ScopedTrace trace("noc_traffic");
  if (!quick) {
    print_load_sweep();
    print_pattern_comparison();
    print_fault_relaying();
    print_adaptive_ablation();
  }
  run_json_measurements(quick);
  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
