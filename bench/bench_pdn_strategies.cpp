// Experiment S3 — Sec. III: edge-LDO vs on-wafer buck down-conversion.
// Reproduces the trade-off that drove the paper's power-delivery decision
// and explores it at higher power levels (the paper's stated future work).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wsp/pdn/strategy.hpp"
#include "wsp/pdn/transient.hpp"

namespace {

using namespace wsp;
using namespace wsp::pdn;

void print_row(const char* name, const StrategyReport& s) {
  std::printf("%-10s %8.1fV %10.1fA %10.1fW %12.1fW %12.1fW %9.1f%% %9.1f%%\n",
              name, s.edge_voltage_v, s.plane_current_a, s.plane_loss_w,
              s.regulation_loss_w, s.delivered_power_w, 100.0 * s.efficiency,
              100.0 * s.area_overhead_fraction);
}

void print_strategies() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  const StrategyComparison cmp = compare_strategies(cfg);

  std::printf("== Sec. III: power delivery strategy comparison ==\n");
  std::printf("paper: buck lowers plane current ~12x but costs 25-30%% wafer "
              "area;\n       the sub-kW prototype chose edge 2.5 V + LDO\n\n");
  std::printf("%-10s %9s %11s %11s %13s %13s %10s %10s\n", "scheme", "edge V",
              "plane I", "plane loss", "reg loss", "delivered", "effic",
              "area ovh");
  print_row("LDO", cmp.ldo);
  print_row("buck", cmp.buck);
  print_row("TWV*", cmp.twv);
  std::printf("(*TWV = backside through-wafer vias, the under-development "
              "technology of Sec. III ref [13]; modelled as future work)\n");
  std::printf("\nplane-current ratio (LDO/buck): %.1fx\n",
              cmp.plane_current_ratio);

  // Deep-trench decap in the substrate (footnote 2, ref [14]).
  std::printf("\n-- deep-trench substrate decap (footnote 2 extension) --\n");
  std::printf("%18s %14s %16s %18s\n", "DTC density", "decap/tile",
              "area recovered", "max load step");
  for (const double nf_per_mm2 : {0.0, 100.0, 500.0, 1000.0}) {
    const DtcBenefit b =
        evaluate_deep_trench_decap(cfg, nf_per_mm2 * 1e-9 / 1e-6);
    std::printf("%12.0f nF/mm2 %11.0f nF %15.0f%% %15.1f A\n", nf_per_mm2,
                (b.onchip_decap_f + b.dtc_decap_f) / 1e-9,
                nf_per_mm2 > 0 ? 100.0 * b.recovered_area_fraction : 0.0,
                b.max_load_step_a);
  }

  // Transient capability that makes the LDO scheme viable (Sec. III):
  const TransientResult tr = simulate_load_step(
      LdoParams{}, TransientParams{}, 0.09, 0.29, 100e-9, 400e-9);
  std::printf("\n200 mA load step on 20 nF/tile decap: droop to %.3f V, "
              "settles in %.1f ns (band 1.0-1.2 V: %s)\n",
              tr.min_v, tr.settle_time_s * 1e9,
              tr.stayed_in_band ? "HELD" : "VIOLATED");

  // Scaling study: at what per-tile power does the LDO scheme stop
  // regulating?  (The paper: "Our ongoing work aims at ... design methods
  // for higher-power waferscale systems.")
  std::printf("\n-- LDO-scheme viability vs per-tile peak power --\n");
  std::printf("%12s %10s %14s %12s\n", "mW per tile", "center V",
              "out-of-reg tiles", "efficiency");
  for (const double mw : {350.0, 500.0, 700.0, 1000.0, 1400.0}) {
    SystemConfig scaled = cfg;
    scaled.tile_peak_power_w = mw * 1e-3;
    WaferPdn pdn(scaled, {});
    const PdnReport r = pdn.solve_uniform(1.0);
    std::printf("%12.0f %10.3f %14d %11.1f%%\n", mw, r.min_supply_v,
                r.tiles_out_of_regulation, 100.0 * r.efficiency);
  }
  std::printf("\n");
}

void BM_CompareStrategies(benchmark::State& state) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  for (auto _ : state)
    benchmark::DoNotOptimize(compare_strategies(cfg).plane_current_ratio);
}
BENCHMARK(BM_CompareStrategies)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_strategies();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
