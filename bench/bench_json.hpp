// Shared bench reporting: stable wall-clock measurement and a
// machine-readable BENCH_<name>.json artifact per bench binary, so the perf
// trajectory is tracked across PRs instead of scrolling away in stdout.
//
// Measurement discipline: every number is min-of-N wall clock with a warm-up
// pass first — the minimum of repeated runs is the standard low-variance
// estimator for compute-bound work (OS jitter only ever adds time), and the
// warm-up keeps cold caches / lazy allocations out of the reported figure.
//
// JSON schema (one file per bench binary, written to the working directory):
//   {"bench": "<suite>", "results": [
//     {"name": ..., "wall_ms": ..., "iterations": ...,
//      "threads": ..., "speedup_vs_serial": ...}, ...]}
// speedup_vs_serial is 1.0 for the serial baseline row itself and is
// omitted entirely when the measurement has no serial counterpart —
// serial-only rows used to print a bogus 0.0000 (tools/bench_compare.py
// keys off name/wall_ms/iterations/threads and accepts either form).
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"

namespace wsp::bench {

struct Measurement {
  std::string name;
  double wall_ms = 0.0;   ///< min over repetitions
  int iterations = 1;     ///< inner iterations folded into one repetition
  int threads = 1;        ///< exec pool size the measurement ran with
  double speedup_vs_serial = 0.0;  ///< <= 0 = no serial counterpart (omitted)
};

/// Runs fn() `warmup` times untimed, then `repeats` timed times, and
/// returns the minimum wall-clock milliseconds of one call.
template <typename F>
double min_wall_ms(F&& fn, int repeats = 5, int warmup = 1) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) fn();
  double best = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

/// Collects measurements and writes BENCH_<suite>.json on write() (or at
/// destruction if not yet written).
class JsonReporter {
 public:
  explicit JsonReporter(std::string suite) : suite_(std::move(suite)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!written_) write();
  }

  void add(Measurement m) { results_.push_back(std::move(m)); }

  /// Measurements recorded so far — lets bench mains fold the same rows
  /// into an obs::RunReport without re-measuring.
  const std::vector<Measurement>& results() const { return results_; }
  const std::string& suite() const { return suite_; }

  /// Measures fn with min-of-N and records it; returns the wall ms so
  /// callers can derive speedups for subsequent rows.
  template <typename F>
  double measure(const std::string& name, int threads, F&& fn,
                 int repeats = 5, int warmup = 1, int iterations = 1,
                 double serial_wall_ms = 0.0) {
    Measurement m;
    m.name = name;
    m.threads = threads;
    m.iterations = iterations;
    m.wall_ms = min_wall_ms(fn, repeats, warmup);
    m.speedup_vs_serial =
        serial_wall_ms > 0.0 ? serial_wall_ms / m.wall_ms : 0.0;
    const double wall = m.wall_ms;
    results_.push_back(std::move(m));
    return wall;
  }

  /// Writes BENCH_<suite>.json via write-temp-then-rename (a run killed
  /// mid-write leaves the previous artifact, never a truncated one);
  /// returns false on I/O failure.
  bool write() {
    written_ = true;
    const std::string path = "BENCH_" + suite_ + ".json";
    std::string json = "{\"bench\": \"" + suite_ + "\", \"results\": [";
    char row[256];
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Measurement& m = results_[i];
      std::snprintf(row, sizeof row,
                    "%s\n  {\"name\": \"%s\", \"wall_ms\": %.6f, "
                    "\"iterations\": %d, \"threads\": %d",
                    i ? "," : "", m.name.c_str(), m.wall_ms, m.iterations,
                    m.threads);
      json += row;
      if (m.speedup_vs_serial > 0.0) {
        std::snprintf(row, sizeof row, ", \"speedup_vs_serial\": %.4f",
                      m.speedup_vs_serial);
        json += row;
      }
      json += "}";
    }
    json += "\n]}\n";
    if (!ckpt::atomic_write_text(path, json)) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("[bench_json] wrote %s (%zu results)\n", path.c_str(),
                results_.size());
    return true;
  }

 private:
  std::string suite_;
  std::vector<Measurement> results_;
  bool written_ = false;
};

/// Removes a leading `--quick` (anywhere in argv) before
/// benchmark::Initialize sees it; returns whether it was present.  CI runs
/// the bench suite with --quick: smaller problem sizes, fewer repetitions.
inline bool consume_quick_flag(int* argc, char** argv) {
  bool quick = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::string(argv[r]) == "--quick") {
      quick = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return quick;
}

}  // namespace wsp::bench
