// Experiments R1/F8 — Sec. VIII: the lightweight jog-free substrate
// router and the reticle step-and-repeat plan, including the single-layer
// fallback (60% shared-memory loss, fully working processor).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "wsp/io/pad_layout.hpp"
#include "wsp/route/substrate_router.hpp"

namespace {

using namespace wsp;
using namespace wsp::route;

void print_routing() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  const SubstrateRouter router(cfg);

  std::printf("== Sec. VIII: jog-free substrate routing (full 32x32 wafer) ==\n");
  std::printf("paper: commercial tools blow up at >15000 mm^2; a custom "
              "jog-free router suffices for chiplet substrates\n\n");

  for (const int layers : {2, 1}) {
    const auto t0 = std::chrono::steady_clock::now();
    const RoutingReport r = router.route(layers);
    const auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::printf("-- %d signal layer(s) --\n", layers);
    std::printf("nets: %zu requested, %zu routed, %zu unroutable | "
                "jog-free: %s | runtime %.1f ms\n",
                r.nets_requested, r.nets_routed, r.nets_unroutable,
                r.jog_free ? "yes" : "no", ms);
    std::printf("wirelength %.2f m | stitched (fat-wire) nets %zu | "
                "gap utilization L1 %.0f%% L2 %.0f%% | capacity %s\n",
                r.total_wirelength_m, r.stitched_nets,
                100.0 * r.max_gap_utilization_layer1,
                100.0 * r.max_gap_utilization_layer2,
                r.capacity_ok ? "OK" : "VIOLATED");
    if (layers == 1) {
      const io::SingleLayerImpact impact = io::single_layer_impact(cfg);
      std::printf("single-layer fallback: %d of %d banks connected, "
                  "memory capacity -%0.0f%%, network intact: %s\n",
                  impact.banks_connected,
                  impact.banks_connected + impact.banks_lost,
                  100.0 * impact.memory_capacity_fraction_lost,
                  impact.network_intact ? "yes" : "NO");
    }
    std::printf("\n");
  }

  const ReticlePlan& plan = router.reticles();
  std::printf("-- reticle step-and-repeat plan --\n");
  std::printf("reticle = %d x %d tiles (72/reticle); array covered by "
              "%d x %d reticles + edge-I/O ring = %d exposures\n",
              cfg.reticle_tiles_x, cfg.reticle_tiles_y, plan.reticles_x(),
              plan.reticles_y(), plan.exposure_count());
  int block_etch = 0, edge_io = 0;
  for (const ReticleInfo& r : plan.enumerate()) {
    if (r.block_etch_needed) ++block_etch;
    if (r.role == ReticleRole::EdgeIo) ++edge_io;
  }
  std::printf("edge-I/O reticles %d | populated reticles needing block etch "
              "%d\n", edge_io, block_etch);
  const WireRule normal = plan.wire_rule(false);
  const WireRule fat = plan.wire_rule(true);
  std::printf("wire rules: %.0f/%.0f um in-reticle, %.0f/%.0f um at stitch "
              "boundaries (pitch held at %.0f um)\n",
              normal.width_m / 1e-6, normal.space_m / 1e-6, fat.width_m / 1e-6,
              fat.space_m / 1e-6, fat.pitch() / 1e-6);

  const auto budget = router.edge_fanout_budget();
  std::printf("edge fan-out: %d wires/edge vs %d capacity -> %s\n\n",
              budget.wires_per_edge, budget.capacity_per_edge,
              budget.fits() ? "fits" : "OVERFLOW");
}

void BM_RouteFullWafer(benchmark::State& state) {
  const SubstrateRouter router(SystemConfig::paper_prototype());
  for (auto _ : state)
    benchmark::DoNotOptimize(router.route(2).total_wirelength_m);
}
BENCHMARK(BM_RouteFullWafer)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_routing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
