// Extension studies beyond the paper's figures, each anchored to a line
// in the text:
//   * memory-technology survey         (Sec. II-c: "newer or denser
//     memory technologies for higher memory capacity")
//   * workload-driven droop            (Fig. 2 computed under a real
//     graph-kernel activity map instead of uniform peak)
//   * substrate net timing             (Sec. V's 1 GHz / 500 um claim and
//     the edge fan-out consequences)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "wsp/arch/power_map.hpp"
#include "wsp/io/cost_model.hpp"
#include "wsp/mem/technology.hpp"
#include "wsp/pdn/thermal.hpp"
#include "wsp/pdn/wafer_pdn.hpp"
#include "wsp/route/net_timing.hpp"
#include "wsp/workloads/graph_apps.hpp"

namespace {

using namespace wsp;

void print_memory_survey() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  std::printf("== memory-technology survey (Sec. II-c heterogeneity) ==\n");
  std::printf("%-22s %14s %16s %14s %10s\n", "technology", "chiplet cap",
              "system shared", "shared B/W", "vs 40nm");
  for (const mem::MemoryTechOutcome& o : mem::memory_technology_survey(cfg)) {
    std::printf("%-22s %11.1f MB %13.1f GB %11.2f TB/s %9.1fx%s\n",
                o.tech.name.c_str(),
                static_cast<double>(o.chiplet_bytes) / (1 << 20),
                static_cast<double>(o.system_shared_bytes) / (1 << 30),
                o.shared_bandwidth_bytes_per_s / 1e12,
                o.capacity_vs_baseline,
                o.tech.requires_refresh ? "  (needs refresh)" : "");
  }
  std::printf("(same 3.15 x 1.1 mm chiplet footprint and 5-bank "
              "organisation; the paper's 'TBs of memory' claim needs the "
              "DRAM-class rows)\n\n");
}

void print_workload_droop() {
  std::printf("== workload-driven PDN droop (Fig. 2 under real activity) ==\n");
  const SystemConfig cfg = SystemConfig::reduced(16, 16);
  const FaultMap faults(cfg.grid());

  // Run a BFS to obtain the per-tile activity/power map.
  Rng rng(3);
  const workloads::Graph g = workloads::make_rmat_graph(10, 6000, 1, rng);
  const workloads::GraphAppResult r = workloads::run_bfs(cfg, faults, g, 0);
  std::printf("BFS on 16x16: makespan %llu cycles, mean core utilisation "
              "%.1f%%\n",
              static_cast<unsigned long long>(r.stats.makespan),
              100.0 * r.stats.mean_core_utilization);

  pdn::WaferPdn pdn(cfg, {});
  const pdn::PdnReport peak = pdn.solve_uniform(1.0);
  const pdn::PdnReport workload = pdn.solve(r.tile_power_w);
  const double hottest =
      *std::max_element(r.tile_power_w.begin(), r.tile_power_w.end());
  std::printf("%-28s %12s %12s\n", "condition", "center V", "current A");
  std::printf("%-28s %12.3f %12.1f\n", "uniform peak (Fig. 2)",
              peak.min_supply_v, peak.total_supply_current_a);
  std::printf("%-28s %12.3f %12.1f\n", "BFS activity map",
              workload.min_supply_v, workload.total_supply_current_a);
  std::printf("hottest tile draws %.0f mW of the %.0f mW peak budget\n",
              hottest * 1e3, cfg.tile_peak_power_w * 1e3);
  std::printf("(graph kernels run the wafer near idle power: the runtime "
              "droop margin is far larger than the Fig. 2 worst case)\n\n");
}

void print_net_timing() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  std::printf("== substrate net timing (Sec. V electrical model) ==\n");
  const route::SubstrateRouter router(cfg);
  const route::RoutingReport routing = router.route(2);
  const route::TimingReport t = route::analyze_routing_timing(cfg, routing);

  auto row = [](const char* name, const route::NetTiming& nt) {
    std::printf("%-18s R %7.2f ohm | C %7.1f fF | Elmore %7.1f ps | "
                "max rate %7.2f GHz\n",
                name, nt.wire_resistance_ohm, nt.wire_capacitance_f / 1e-15,
                nt.elmore_delay_s / 1e-12, nt.max_rate_hz / 1e9);
  };
  row("inter-tile link", t.worst_inter_tile);
  row("bank bus", t.worst_bank_bus);
  row("edge fan-out", t.worst_edge_fanout);
  std::printf("1 GHz on inter-tile links: %s | bank buses: %s | edge "
              "fan-out limited to %.0f MHz (JTAG/config only, needs "
              "%.0f MHz)\n\n",
              t.inter_tile_meets_rate ? "met" : "NOT MET",
              t.bank_bus_meets_rate ? "met" : "NOT MET",
              t.edge_fanout_rate_hz / 1e6, cfg.jtag_tck_hz / 1e6);
}

void print_thermal() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  std::printf("== whole-wafer thermal model (Sec. IX companion) ==\n");

  pdn::WaferThermal thermal(cfg, {});
  const pdn::ThermalReport uniform = thermal.solve_uniform(1.0);
  std::printf("uniform 350 mW/tile, 2 kW/m2K cold plate: mean %.1f C, "
              "max %.1f C (%d tiles over the 105 C limit)\n",
              uniform.mean_c, uniform.max_c, uniform.tiles_over_limit);

  // PDN-coupled heat map: edge tiles burn the LDO headroom.
  pdn::WaferPdn pdn(cfg, {});
  const pdn::PdnReport power = pdn.solve_uniform(1.0);
  const auto heat = pdn::heat_map_from_pdn(cfg, power);
  pdn::WaferThermal coupled(cfg, {});
  const pdn::ThermalReport r = coupled.solve(heat);
  const TileGrid grid = cfg.grid();
  std::printf("PDN-coupled heat map (%.0f W total): edge tile %.1f C vs "
              "center tile %.1f C — the LDO headroom makes the *edge* run "
              "hotter\n",
              r.total_heat_w,
              r.tile_temperature_c[grid.index_of({0, 16})],
              r.tile_temperature_c[grid.index_of({16, 16})]);

  std::printf("%14s %14s %12s %16s\n", "tile power", "wafer power",
              "max temp", "cooling needed");
  for (const double mw : {350.0, 1000.0, 3500.0}) {
    SystemConfig scaled = cfg;
    scaled.tile_peak_power_w = mw * 1e-3;
    for (const double h : {1000.0, 2000.0, 10000.0, 20000.0}) {
      pdn::ThermalOptions opt;
      opt.cooling_w_m2k = h;
      const pdn::ThermalReport s =
          pdn::WaferThermal(scaled, opt).solve_uniform(1.0);
      if (s.tiles_over_limit == 0) {
        std::printf("%11.0f mW %11.1f kW %10.1f C %13.0f W/m2K\n", mw,
                    mw * 1024 / 1e6, s.max_c, h);
        break;
      }
      if (h == 20000.0)
        std::printf("%11.0f mW %11.1f kW %10s %16s\n", mw, mw * 1024 / 1e6,
                    "> limit", "beyond 20k");
    }
  }
  std::printf("\n");
}

void print_cost_model() {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  std::printf("== Sec. I economics: chiplet assembly vs monolithic "
              "waferscale ==\n");
  std::printf("%14s %18s %20s %22s %12s\n", "defects/cm2",
              "monolithic yield", "monolithic $/system",
              "chiplet $/system", "advantage");
  for (const double d0_cm2 : {0.1, 0.3, 0.5, 0.8}) {
    io::CostInputs in;
    in.defect_density_per_m2 = d0_cm2 * 1e4;
    const io::CostComparison cmp = io::compare_costs(cfg, in);
    std::printf("%14.1f %17.1f%% %20.0f %22.0f %11.1fx\n", d0_cm2,
                100.0 * cmp.monolithic.system_yield,
                cmp.monolithic.cost_per_good_system,
                cmp.chiplet.cost_per_good_system, cmp.chiplet_advantage);
  }
  // The redundancy requirement the paper cites for monolithic designs.
  std::printf("\nmonolithic spare-tile requirement at 0.5 defects/cm2:\n");
  for (const double spares : {0.02, 0.05, 0.10}) {
    io::CostInputs in;
    in.defect_density_per_m2 = 5000.0;
    in.monolithic_spare_fraction = spares;
    const io::MonolithicCost m = io::estimate_monolithic_cost(cfg, in);
    std::printf("  %4.0f%% spares -> system yield %6.2f%%\n", 100.0 * spares,
                100.0 * m.system_yield);
  }
  std::printf("(plus the qualitative chiplet win the model cannot price: "
              "heterogeneous memory integration, Sec. II-c)\n\n");
}

void BM_MemorySurvey(benchmark::State& state) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  for (auto _ : state)
    benchmark::DoNotOptimize(mem::memory_technology_survey(cfg).size());
}
BENCHMARK(BM_MemorySurvey);

}  // namespace

int main(int argc, char** argv) {
  print_memory_survey();
  print_workload_droop();
  print_net_timing();
  print_thermal();
  print_cost_model();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
