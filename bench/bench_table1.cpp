// Experiment T1 — Table I: "Salient Features of the Waferscale Processor
// System".  Every row is *derived* from the primitive SystemConfig
// parameters and printed next to the paper's value.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wsp/common/config.hpp"

namespace {

void print_table1() {
  using wsp::SystemConfig;
  const SystemConfig cfg = SystemConfig::paper_prototype();

  std::printf("== Table I: Salient Features of the Waferscale Processor ==\n");
  std::printf("%-34s %18s %18s\n", "feature", "model (derived)", "paper");
  auto row = [](const char* name, double model, const char* fmt,
                const char* paper) {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, model);
    std::printf("%-34s %18s %18s\n", name, buf, paper);
  };

  row("# Compute chiplets", cfg.total_tiles(), "%.0f", "1024");
  row("# Memory chiplets", cfg.total_tiles(), "%.0f", "1024");
  row("# Cores per tile", cfg.cores_per_tile, "%.0f", "14");
  row("Total # cores", cfg.total_cores(), "%.0f", "14336");
  row("Compute throughput (TOPS)", cfg.compute_throughput_ops() / 1e12,
      "%.2f", "4.3");
  row("Total shared memory (MB)",
      static_cast<double>(cfg.total_shared_memory_bytes()) / (1 << 20),
      "%.0f", "512");
  row("Private memory per core (KB)",
      static_cast<double>(cfg.private_mem_per_core_bytes) / 1024.0, "%.0f",
      "64");
  row("Shared memory B/W (TB/s)",
      cfg.shared_memory_bandwidth_bytes_per_s() / 1e12, "%.3f", "6.144");
  row("Network B/W (TBps)", cfg.network_bandwidth_bytes_per_s() / 1e12,
      "%.2f", "9.83");
  row("Nominal freq (MHz)", cfg.nominal_freq_hz / 1e6, "%.0f", "300");
  row("Nominal voltage (V)", cfg.nominal_voltage_v, "%.1f", "1.1");
  row("Peak current (A)", cfg.total_peak_current_a(), "%.0f", "~290");
  row("Total peak power (W)", cfg.total_peak_power_w(), "%.0f", "725");
  row("Total area w/ edge I/Os (mm^2)", cfg.total_area_m2() / 1e-6, "%.0f",
      "15100");
  row("Active silicon area (mm^2)", cfg.active_silicon_area_m2() / 1e-6,
      "%.0f", "(n/a)");
  row("Compute chiplet I/Os", cfg.ios_per_compute_chiplet, "%.0f", "2020");
  row("Memory chiplet I/Os", cfg.ios_per_memory_chiplet, "%.0f", "1250");
  row("Total inter-chip I/Os (M)",
      static_cast<double>(cfg.total_inter_chip_ios()) / 1e6, "%.2f",
      "3.7+ (incl. edge pads)");
  std::printf("\n");
}

void BM_DeriveTable1(benchmark::State& state) {
  for (auto _ : state) {
    const wsp::SystemConfig cfg = wsp::SystemConfig::paper_prototype();
    benchmark::DoNotOptimize(cfg.total_peak_power_w());
    benchmark::DoNotOptimize(cfg.network_bandwidth_bytes_per_s());
    benchmark::DoNotOptimize(cfg.total_area_m2());
  }
}
BENCHMARK(BM_DeriveTable1);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
