#!/usr/bin/env python3
"""Chaos-invariance gate for the wsp::fleet dispatcher.

Drives the fleet_campaign example through seeded chaos schedules — SIGKILL
mid-shard, SIGSTOP past the heartbeat deadline, and mixed probabilistic
injection — plus a forced poison shard, and enforces the dispatcher's
acceptance property: for every scenario that quarantines nothing, the
merged campaign report (RUNREPORT_fleet_campaign.json) must be
byte-identical to the undisturbed single-process run, and the poison
scenario must terminate with partial coverage, a nonzero quarantine count
and the distinct partial-coverage exit status — never a hang.

    fleet_chaos_gate.py path/to/fleet_campaign

Exit status 0 when every scenario holds; 1 with a diagnostic otherwise.
Stdlib only, so it runs anywhere CTest/CI can find a python3.
"""
import json
import os
import subprocess
import sys
import tempfile

TRIALS = 8
SHARDS = 3
PARTIAL_COVERAGE_EXIT = 3  # fleet_campaign's "quarantined shards" status
SCENARIO_TIMEOUT_S = 240   # hard bound: a hung dispatcher must fail, not hang


def run(binary, args, cwd, expect_status=0):
    try:
        proc = subprocess.run([binary] + args, cwd=cwd,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT,
                              timeout=SCENARIO_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        sys.exit("FAIL: %s %s still running after %ds — the dispatcher "
                 "must terminate, quarantine or not"
                 % (binary, " ".join(args), SCENARIO_TIMEOUT_S))
    if proc.returncode != expect_status:
        sys.exit("FAIL: %s %s exited %d (want %d):\n%s"
                 % (binary, " ".join(args), proc.returncode, expect_status,
                    proc.stdout.decode(errors="replace")))
    return proc.stdout.decode(errors="replace")


def fleet_counters(work_dir):
    with open(os.path.join(work_dir, "RUNREPORT_fleet_dispatch.json")) as f:
        return json.load(f)["metrics"]["fleet"]["counters"]


def campaign_report(work_dir):
    with open(os.path.join(work_dir, "RUNREPORT_fleet_campaign.json"),
              "rb") as f:
        return f.read()


def check_scenario(name, binary, tmp, reference, extra_args,
                   expect_retries=False, expect_kills=False,
                   expect_stalls=False):
    work = os.path.join(tmp, name)
    os.mkdir(work)
    args = ["--trials", str(TRIALS), "--shards", str(SHARDS),
            "--work-dir", "."] + extra_args
    log = run(binary, args, work)
    print("[%s] %s" % (name, log.strip().splitlines()[0]))

    merged = campaign_report(work)
    if merged != reference:
        sys.exit("FAIL[%s]: merged campaign report differs from the "
                 "single-process run (%d vs %d bytes)"
                 % (name, len(merged), len(reference)))
    c = fleet_counters(work)
    if c["fleet.shards_quarantined"] != 0:
        sys.exit("FAIL[%s]: %d shards quarantined; chaos must be survivable"
                 % (name, c["fleet.shards_quarantined"]))
    if c["fleet.shards_completed"] != SHARDS:
        sys.exit("FAIL[%s]: only %d/%d shards completed"
                 % (name, c["fleet.shards_completed"], SHARDS))
    if expect_retries and c["fleet.retries"] == 0:
        sys.exit("FAIL[%s]: chaos was supposed to force re-dispatches"
                 % name)
    if expect_kills and c["fleet.chaos.kills"] == 0:
        sys.exit("FAIL[%s]: the chaos engine injected no kills" % name)
    if expect_stalls and c["fleet.chaos.stalls"] == 0:
        sys.exit("FAIL[%s]: the chaos engine injected no stalls" % name)


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    binary = os.path.abspath(sys.argv[1])

    with tempfile.TemporaryDirectory(prefix="fleet_chaos_gate.") as tmp:
        # Undisturbed single-process reference.
        ref_dir = os.path.join(tmp, "single")
        os.mkdir(ref_dir)
        run(binary, ["--trials", str(TRIALS), "--single",
                     "--work-dir", "."], ref_dir)
        reference = campaign_report(ref_dir)

        # Scenario 1: every shard's first attempt is SIGKILLed one trial in
        # (no flush, no handler); retries resume from the snapshots.
        check_scenario("kill", binary, tmp, reference,
                       ["--chaos-kill-after", "1"],
                       expect_retries=True, expect_kills=True)

        # Scenario 2: every shard's first attempt is SIGSTOPped one trial
        # in and never chaos-resumed; the heartbeat deadline must fire and
        # the SIGCONT+SIGTERM / SIGKILL escalation must recover each shard.
        # The near-zero grace makes the escalation a hard kill, so at
        # least one re-dispatch always happens (a longer grace would let a
        # resumed worker finish its last trial and legitimately succeed).
        # The heartbeat deadline leaves headroom for slow trials on a
        # loaded sanitizer box (a deadline below the worst trial latency
        # would spuriously escalate healthy retries into quarantine).
        check_scenario("stall", binary, tmp, reference,
                       ["--chaos-stall-after", "1",
                        "--heartbeat-timeout", "2.0",
                        "--term-grace", "0.05",
                        "--max-attempts", "6"],
                       expect_retries=True, expect_stalls=True)

        # Scenario 3: mixed probabilistic chaos across several seeds —
        # whatever the schedule, the bytes must not move.  Per-tick draws
        # compound with machine slowness (more supervision ticks per
        # attempt), so the event cap is held strictly below the attempt
        # budget: even if every event lands on one shard it cannot
        # quarantine, on any machine.
        for seed in (1, 7, 1234):
            check_scenario("mixed_seed%d" % seed, binary, tmp, reference,
                           ["--chaos-seed", str(seed),
                            "--chaos-kill-prob", "0.02",
                            "--chaos-stall-prob", "0.02",
                            "--chaos-max-events", "4",
                            "--max-attempts", "6",
                            "--stall-resume", "0.2",
                            "--heartbeat-timeout", "5.0",
                            "--term-grace", "0.5"])

        # Scenario 4: a poison shard that fails every attempt.  The run
        # must terminate (not hang) with the distinct partial-coverage
        # status, one quarantined shard, and the other shards' results
        # intact.
        poison_dir = os.path.join(tmp, "poison")
        os.mkdir(poison_dir)
        log = run(binary, ["--trials", str(TRIALS), "--shards", str(SHARDS),
                           "--work-dir", ".", "--poison-shard", "1",
                           "--max-attempts", "2"],
                  poison_dir, expect_status=PARTIAL_COVERAGE_EXIT)
        print("[poison] %s" % log.strip().splitlines()[0])
        c = fleet_counters(poison_dir)
        if c["fleet.shards_quarantined"] != 1:
            sys.exit("FAIL[poison]: want exactly 1 quarantined shard, got %d"
                     % c["fleet.shards_quarantined"])
        if c["fleet.shards_completed"] != SHARDS - 1:
            sys.exit("FAIL[poison]: want %d completed shards, got %d"
                     % (SHARDS - 1, c["fleet.shards_completed"]))
        if campaign_report(poison_dir) == reference:
            sys.exit("FAIL[poison]: partial report claims full coverage")

        print("OK: %d chaos scenarios byte-identical to single-process; "
              "poison shard quarantined with partial coverage (exit %d)"
              % (5, PARTIAL_COVERAGE_EXIT))


if __name__ == "__main__":
    main()
