#!/usr/bin/env python3
"""Process-level kill-and-resume gate for the checkpoint layer.

Drives the campaign_shard example the way an operator would after a node
failure: one shard worker is SIGKILLed mid-run (a real kill -9, no atexit,
no flushing), rerun with the *same command line* to resume from its
crash-safe snapshot, and the merged shard results must produce a RunReport
byte-identical to an uninterrupted single-process campaign.

    ckpt_kill_resume.py path/to/campaign_shard

Exit status 0 on byte-identical reports; 1 with a diagnostic otherwise.
Stdlib only, so it runs anywhere CTest/CI can find a python3.
"""
import os
import signal
import subprocess
import sys
import tempfile
import time

TRIALS = 9
NUM_SHARDS = 3
KILLED_SHARD = 1  # owns trials [3, 6): three chances to die mid-slice


def run(binary, args, cwd):
    proc = subprocess.run([binary] + args, cwd=cwd,
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.exit("FAIL: %s %s exited %d:\n%s"
                 % (binary, " ".join(args), proc.returncode,
                    proc.stdout.decode(errors="replace")))
    return proc.stdout.decode(errors="replace")


def shard_args(shard, out, ckpt=None):
    args = ["--trials", str(TRIALS), "--shard", str(shard),
            "--num-shards", str(NUM_SHARDS), "--out", out]
    if ckpt:
        args += ["--ckpt", ckpt]
    return args


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    binary = os.path.abspath(sys.argv[1])

    with tempfile.TemporaryDirectory(prefix="ckpt_kill_resume.") as tmp:
        ref_dir = os.path.join(tmp, "single")
        shard_dir = os.path.join(tmp, "sharded")
        os.mkdir(ref_dir)
        os.mkdir(shard_dir)

        # Uninterrupted single-process reference.
        run(binary, ["--trials", str(TRIALS), "--single"], ref_dir)

        # Healthy shards 0 and 2.
        for shard in (0, 2):
            run(binary, shard_args(shard, "s%d.wsp" % shard), shard_dir)

        # Shard 1 checkpoints after every trial; SIGKILL it the moment its
        # first snapshot lands on disk.
        ckpt_path = os.path.join(shard_dir, "s1.ckpt")
        victim = subprocess.Popen(
            [binary] + shard_args(KILLED_SHARD, "s1.wsp", "s1.ckpt"),
            cwd=shard_dir, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 120
        while (not os.path.exists(ckpt_path)
               and victim.poll() is None and time.monotonic() < deadline):
            time.sleep(0.01)
        killed = False
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            killed = True
        if killed and not os.path.exists(ckpt_path):
            sys.exit("FAIL: worker died before its first snapshot landed")
        if not killed:
            # The slice outran the poll loop (tiny machine timing); the
            # rerun below still validates the resume-from-complete path,
            # but say so.
            print("WARN: shard finished before it could be killed; "
                  "resume will load a complete snapshot")

        # Resume: the same command line, no special flags.  Completed
        # trials load from the snapshot; only the missing ones re-run.
        resume_log = run(binary, shard_args(KILLED_SHARD, "s1.wsp", "s1.ckpt"),
                         shard_dir)
        print(resume_log.strip())

        # Merge all three partials and compare the emitted RunReport.
        run(binary, ["--trials", str(TRIALS), "--merge",
                     "s0.wsp", "s1.wsp", "s2.wsp"], shard_dir)
        report = "RUNREPORT_campaign_shard.json"
        with open(os.path.join(ref_dir, report), "rb") as f:
            reference = f.read()
        with open(os.path.join(shard_dir, report), "rb") as f:
            merged = f.read()
        if merged != reference:
            sys.exit("FAIL: merged RunReport differs from the "
                     "single-process run (%d vs %d bytes)"
                     % (len(merged), len(reference)))
        print("OK: killed worker resumed; merged RunReport byte-identical "
              "to single-process (%d bytes)" % len(reference))


if __name__ == "__main__":
    main()
