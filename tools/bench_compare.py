#!/usr/bin/env python3
"""Compare BENCH_*.json files against checked-in baselines.

Guards the cycle-level simulators against wall-time regressions: every
bench binary writes a ``BENCH_<name>.json`` (see bench/bench_json.hpp)
and this script diffs it against ``bench/baselines/BENCH_<name>.json``.
A measurement whose per-iteration wall time regresses by more than the
threshold (default 15%) fails the run.

Measurements are keyed by (name, threads) — the same workload appears
once per pool configuration.  Comparison is per *iteration* (wall_ms /
iterations), so a --quick CI run (fewer cycles) still compares against a
full-length baseline.  Entries present on only one side are reported but
never fail: new benches land before their baseline, and baselines for
retired benches linger until cleaned up.

A missing or malformed file (current or baseline) is reported as a
per-suite error naming the file and the defect, counts as a failure, and
never aborts the remaining suites with a traceback.

Wall-clock baselines are machine-dependent.  The checked-in set was
measured on the reference container (single Xeon core @ 2.1 GHz); after
an intentional perf change, or on first run on new hardware, refresh
with ``--update``.

Usage:
  tools/bench_compare.py [--baseline-dir bench/baselines]
                         [--threshold 0.15] [--update] BENCH_*.json
  tools/bench_compare.py --self-test

stdlib-only by design (CI runners have no third-party packages).
"""

import argparse
import json
import os
import shutil
import sys


class BenchFormatError(Exception):
    """A bench JSON file that cannot be compared, and why."""


def load_results(path):
    """Returns {(name, threads): per-iteration wall ms} for one bench file.

    Raises BenchFormatError naming `path` and the defect when the file is
    missing, unreadable, not JSON, or structurally wrong.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise BenchFormatError("%s: cannot read (%s)"
                               % (path, e.strerror or e))
    except json.JSONDecodeError as e:
        raise BenchFormatError("%s: not valid JSON (%s)" % (path, e))
    if not isinstance(doc, dict) or not isinstance(doc.get("results"), list):
        raise BenchFormatError(
            '%s: expected {"bench": ..., "results": [...]}' % path)
    out = {}
    for i, entry in enumerate(doc["results"]):
        if not isinstance(entry, dict):
            raise BenchFormatError("%s: results[%d] is not an object"
                                   % (path, i))
        if "name" not in entry or "wall_ms" not in entry:
            raise BenchFormatError("%s: results[%d] lacks name/wall_ms"
                                   % (path, i))
        try:
            wall = float(entry["wall_ms"])
            iters = int(entry.get("iterations") or 1)
            threads = int(entry.get("threads", 1))
        except (TypeError, ValueError):
            raise BenchFormatError(
                "%s: results[%d] has non-numeric wall_ms/iterations/threads"
                % (path, i))
        out[(str(entry["name"]), threads)] = wall / max(1, iters)
    return out


def compare_results(current, baseline, threshold):
    """Diffs two {(name, threads): ms/iter} maps.  Returns failure count."""
    failures = 0
    for key in sorted(current.keys() | baseline.keys()):
        name = "%s (threads=%d)" % key
        if key not in baseline:
            print("  NEW      %-50s %.4f ms/iter (no baseline)"
                  % (name, current[key]))
            continue
        if key not in current:
            print("  MISSING  %-50s baseline only" % name)
            continue
        base, cur = baseline[key], current[key]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSED"
            failures += 1
        print("  %-8s %-50s %.4f -> %.4f ms/iter (%+.1f%%)"
              % (status, name, base, cur, (ratio - 1.0) * 100.0))
    return failures


def self_test():
    """stdlib-only sanity checks of the loader and comparator; returns 0
    when every check passes.  Run by CI so a bench-format change that
    breaks this script is caught next to the change."""
    import tempfile
    failed = []

    def check(label, cond):
        print("  %-58s %s" % (label, "ok" if cond else "FAIL"))
        if not cond:
            failed.append(label)

    def format_error_from(path):
        try:
            load_results(path)
        except BenchFormatError:
            return True
        return False

    with tempfile.TemporaryDirectory() as d:
        def write(name, text):
            path = os.path.join(d, name)
            with open(path, "w") as f:
                f.write(text)
            return path

        good = write("BENCH_good.json", json.dumps(
            {"bench": "good", "results": [
                {"name": "a", "wall_ms": 2.0, "iterations": 2,
                 "threads": 1}]}))
        check("well-formed file loads per-iteration",
              load_results(good) == {("a", 1): 1.0})
        check("missing file is a BenchFormatError",
              format_error_from(os.path.join(d, "BENCH_absent.json")))
        check("invalid JSON is a BenchFormatError",
              format_error_from(write("BENCH_syntax.json", "{not json")))
        check("non-list results is a BenchFormatError",
              format_error_from(write("BENCH_shape.json",
                                      '{"results": {"a": 1}}')))
        check("entry without wall_ms is a BenchFormatError",
              format_error_from(write("BENCH_nokey.json",
                                      '{"results": [{"name": "a"}]}')))
        check("non-numeric wall_ms is a BenchFormatError",
              format_error_from(write(
                  "BENCH_nonnum.json",
                  '{"results": [{"name": "a", "wall_ms": "fast"}]}')))

    check("regression beyond threshold fails",
          compare_results({("a", 1): 2.0}, {("a", 1): 1.0}, 0.15) == 1)
    check("regression within threshold passes",
          compare_results({("a", 1): 1.1}, {("a", 1): 1.0}, 0.15) == 0)
    check("new and retired entries never fail",
          compare_results({("b", 1): 1.0}, {("a", 1): 1.0}, 0.15) == 0)
    check("zero baseline counts as regression",
          compare_results({("a", 1): 1.0}, {("a", 1): 0.0}, 0.15) == 1)

    if failed:
        print("SELF-TEST FAIL: %d check(s)" % len(failed))
        return 1
    print("SELF-TEST OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BENCH_*.json to check")
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             os.pardir, "bench", "baselines"),
        help="baseline directory (default: <repo>/bench/baselines)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression that fails (default .15)")
    parser.add_argument("--update", action="store_true",
                        help="copy the given files over the baselines")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in loader/comparator checks")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no BENCH_*.json files given")

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.files:
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print("baseline updated: %s" % dest)
        return 0

    total_failures = 0
    for path in args.files:
        baseline = os.path.join(args.baseline_dir, os.path.basename(path))
        print("%s vs %s" % (path, baseline))
        try:
            current = load_results(path)
        except BenchFormatError as e:
            print("  ERROR    current file unusable: %s" % e)
            total_failures += 1
            continue
        if not os.path.exists(baseline):
            print("  (no baseline checked in — skipping; add one with"
                  " --update)")
            continue
        try:
            base = load_results(baseline)
        except BenchFormatError as e:
            print("  ERROR    baseline unusable: %s (refresh with --update)"
                  % e)
            total_failures += 1
            continue
        total_failures += compare_results(current, base, args.threshold)

    if total_failures:
        print("FAIL: %d measurement(s) regressed or file(s) unusable"
              " (threshold %.0f%%)"
              % (total_failures, args.threshold * 100.0))
        return 1
    print("OK: no wall-time regression beyond %.0f%%"
          % (args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
