#!/usr/bin/env python3
"""Compare BENCH_*.json files against checked-in baselines.

Guards the cycle-level simulators against wall-time regressions: every
bench binary writes a ``BENCH_<name>.json`` (see bench/bench_json.hpp)
and this script diffs it against ``bench/baselines/BENCH_<name>.json``.
A measurement whose per-iteration wall time regresses by more than the
threshold (default 15%) fails the run.

Measurements are keyed by (name, threads) — the same workload appears
once per pool configuration.  Comparison is per *iteration* (wall_ms /
iterations), so a --quick CI run (fewer cycles) still compares against a
full-length baseline.  Entries present on only one side are reported but
never fail: new benches land before their baseline, and baselines for
retired benches linger until cleaned up.

Wall-clock baselines are machine-dependent.  The checked-in set was
measured on the reference container (single Xeon core @ 2.1 GHz); after
an intentional perf change, or on first run on new hardware, refresh
with ``--update``.

Usage:
  tools/bench_compare.py [--baseline-dir bench/baselines]
                         [--threshold 0.15] [--update] BENCH_*.json

stdlib-only by design (CI runners have no third-party packages).
"""

import argparse
import json
import os
import shutil
import sys


def load_results(path):
    """Returns {(name, threads): per-iteration wall ms} for one bench file."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("results", []):
        iters = entry.get("iterations") or 1
        key = (entry["name"], entry.get("threads", 1))
        out[key] = entry["wall_ms"] / max(1, iters)
    return out


def compare(current_path, baseline_path, threshold):
    """Diffs one bench file against its baseline.  Returns failure count."""
    current = load_results(current_path)
    baseline = load_results(baseline_path)
    failures = 0
    for key in sorted(current.keys() | baseline.keys()):
        name = "%s (threads=%d)" % key
        if key not in baseline:
            print("  NEW      %-50s %.4f ms/iter (no baseline)"
                  % (name, current[key]))
            continue
        if key not in current:
            print("  MISSING  %-50s baseline only" % name)
            continue
        base, cur = baseline[key], current[key]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSED"
            failures += 1
        print("  %-8s %-50s %.4f -> %.4f ms/iter (%+.1f%%)"
              % (status, name, base, cur, (ratio - 1.0) * 100.0))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="BENCH_*.json to check")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression that fails (default .15)")
    parser.add_argument("--update", action="store_true",
                        help="copy the given files over the baselines")
    args = parser.parse_args()

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.files:
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print("baseline updated: %s" % dest)
        return 0

    total_failures = 0
    for path in args.files:
        baseline = os.path.join(args.baseline_dir, os.path.basename(path))
        print("%s vs %s" % (path, baseline))
        if not os.path.exists(baseline):
            print("  (no baseline checked in — skipping; add one with"
                  " --update)")
            continue
        total_failures += compare(path, baseline, args.threshold)

    if total_failures:
        print("FAIL: %d measurement(s) regressed more than %.0f%%"
              % (total_failures, args.threshold * 100.0))
        return 1
    print("OK: no wall-time regression beyond %.0f%%"
          % (args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
