#!/usr/bin/env python3
"""Minimal JSON-Schema validator (draft-07 subset), stdlib only.

CI uses this to check the observability artifacts (RUNREPORT_*.json,
TRACE_*.json) against schemas/*.schema.json without adding a jsonschema
dependency.  Supported keywords: type (string or list of strings),
required, properties, additionalProperties (schema or false), items,
enum, minimum, maximum, minItems.  Any other validation keyword in a
schema is a hard error so new schema features can't silently go
unchecked.

Usage: validate_json.py <schema.json> <instance.json> [more instances...]
Exit status 0 when every instance validates, 1 otherwise.
"""

import json
import sys

# Annotation-only keywords are ignored; everything else must be supported.
ANNOTATIONS = {"$schema", "title", "description", "$comment", "examples"}
SUPPORTED = {
    "type", "required", "properties", "additionalProperties", "items",
    "enum", "minimum", "maximum", "minItems",
}


def type_matches(value, name):
    if name == "object":
        return isinstance(value, dict)
    if name == "array":
        return isinstance(value, list)
    if name == "string":
        return isinstance(value, str)
    if name == "boolean":
        return isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "null":
        return value is None
    raise SystemExit(f"schema error: unknown type {name!r}")


def validate(value, schema, path, errors):
    unknown = set(schema) - SUPPORTED - ANNOTATIONS
    if unknown:
        raise SystemExit(
            f"schema error at {path}: unsupported keywords {sorted(unknown)}")

    if "type" in schema:
        names = schema["type"]
        if isinstance(names, str):
            names = [names]
        if not any(type_matches(value, n) for n in names):
            errors.append(
                f"{path}: expected {'|'.join(names)}, "
                f"got {type(value).__name__}")
            return  # structural keywords below assume the right type

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")

    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        props = schema.get("properties", {})
        additional = schema.get("additionalProperties")
        for key, sub in value.items():
            sub_path = f"{path}.{key}"
            if key in props:
                validate(sub, props[key], sub_path, errors)
            elif isinstance(additional, dict):
                validate(sub, additional, sub_path, errors)
            elif additional is False:
                errors.append(f"{path}: unexpected property {key!r}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(
                f"{path}: {len(value)} items < minItems {schema['minItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        schema = json.load(f)
    status = 0
    for instance_path in argv[2:]:
        with open(instance_path, encoding="utf-8") as f:
            instance = json.load(f)
        errors = []
        validate(instance, schema, "$", errors)
        if errors:
            status = 1
            print(f"FAIL {instance_path} vs {argv[1]}:")
            for err in errors[:25]:
                print(f"  {err}")
            if len(errors) > 25:
                print(f"  ... and {len(errors) - 25} more")
        else:
            print(f"OK   {instance_path} matches {argv[1]}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
